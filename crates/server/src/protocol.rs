//! The daemon's wire protocol: newline-delimited JSON frames.
//!
//! Every message is one line of compact JSON (no raw newlines — strings
//! escape control characters) terminated by `\n`. Requests carry a
//! client-chosen `id` that the matching response echoes, so a client can
//! pipeline calls over one connection. Circuits travel as OpenQASM
//! source ([`accqoc_circuit::parse_qasm`] / [`accqoc_circuit::to_qasm`]),
//! pulses as the same JSON artifact [`PulseCache`] persists to disk —
//! both ends of the wire speak formats the repository already pins as
//! byte-deterministic.
//!
//! Request frame:
//!
//! ```json
//! {"id": 1, "method": "serve_program", "params": {"qasm": "...", "return_pulses": true}}
//! ```
//!
//! Response frame (success / failure):
//!
//! ```json
//! {"id": 1, "ok": true, "result": {...}}
//! {"id": 1, "ok": false, "error": {"code": "busy", "message": "..."}}
//! ```

use accqoc::json::{self, JsonValue};
use accqoc::{LibraryStats, PulseCache, ServeReport, VerifyReport};
use accqoc_circuit::UnitaryKey;

/// Default page size of the `library` method when the request names none.
pub const DEFAULT_LIBRARY_LIMIT: usize = 50;
/// Hard page-size cap of the `library` method: a larger requested limit
/// is clamped, never honored (one page must stay a bounded frame).
pub const MAX_LIBRARY_LIMIT: usize = 500;

pub(crate) fn hex_encode(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

pub(crate) fn hex_decode(text: &str) -> Result<Vec<u8>, String> {
    if !text.len().is_multiple_of(2) {
        return Err("odd-length hex string".into());
    }
    (0..text.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&text[i..i + 2], 16).map_err(|_| format!("bad hex at byte {i}"))
        })
        .collect()
}

/// Machine-readable failure classes a response can carry. Protocol-level
/// codes (`malformed_json` … `oversized`) mean the request never reached
/// the compiler; compiler-level codes (`qasm`, `compile`) wrap an
/// [`accqoc::Error`] from the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorCode {
    /// The request line was not valid JSON.
    MalformedJson,
    /// The `method` field named no known method.
    UnknownMethod,
    /// The `params` object was missing a required field or mistyped.
    BadParams,
    /// The request line exceeded the daemon's size cap.
    Oversized,
    /// The admission queue was full — retry later (the daemon never
    /// blocks the accept loop on a full queue).
    Busy,
    /// The daemon is draining for shutdown.
    ShuttingDown,
    /// The QASM payload did not parse.
    Qasm,
    /// Pulse compilation or verification failed in the session.
    Compile,
    /// HTTP: the request path names no route.
    NotFound,
    /// HTTP: the route exists but not for the request's method verb.
    MethodNotAllowed,
    /// Router mode: the shard owning the request's groups did not answer
    /// within the router's bounded retry/backoff budget. Retryable — the
    /// shard may be restarting from its durable store.
    ShardUnavailable,
    /// Anything else (a bug, by definition).
    Internal,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::MalformedJson => "malformed_json",
            Self::UnknownMethod => "unknown_method",
            Self::BadParams => "bad_params",
            Self::Oversized => "oversized",
            Self::Busy => "busy",
            Self::ShuttingDown => "shutting_down",
            Self::Qasm => "qasm",
            Self::Compile => "compile",
            Self::NotFound => "not_found",
            Self::MethodNotAllowed => "method_not_allowed",
            Self::ShardUnavailable => "shard_unavailable",
            Self::Internal => "internal",
        }
    }

    fn from_str(text: &str) -> Self {
        match text {
            "malformed_json" => Self::MalformedJson,
            "unknown_method" => Self::UnknownMethod,
            "bad_params" => Self::BadParams,
            "oversized" => Self::Oversized,
            "busy" => Self::Busy,
            "shutting_down" => Self::ShuttingDown,
            "qasm" => Self::Qasm,
            "compile" => Self::Compile,
            "not_found" => Self::NotFound,
            "method_not_allowed" => Self::MethodNotAllowed,
            "shard_unavailable" => Self::ShardUnavailable,
            _ => Self::Internal,
        }
    }
}

/// A typed failure carried in a response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Failure class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Builds a wire error.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }

    pub(crate) fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "code".into(),
                JsonValue::String(self.code.as_str().to_string()),
            ),
            ("message".into(), JsonValue::String(self.message.clone())),
        ])
    }

    fn from_json_value(value: &JsonValue) -> Result<Self, String> {
        let code = value
            .get("code")
            .and_then(JsonValue::as_str)
            .ok_or("error missing `code`")?;
        let message = value
            .get("message")
            .and_then(JsonValue::as_str)
            .ok_or("error missing `message`")?;
        Ok(Self {
            code: ErrorCode::from_str(code),
            message: message.to_string(),
        })
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

impl std::error::Error for WireError {}

/// The methods the daemon serves, with their parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum Call {
    /// Serve one program against the live pulse library
    /// ([`accqoc::Session::serve_program`] semantics: hits free, misses
    /// warm-started, results inserted back).
    ServeProgram {
        /// The program as OpenQASM source.
        qasm: String,
        /// When `true`, the response carries the resolved pulses for the
        /// program's unique groups as a [`PulseCache`] artifact.
        return_pulses: bool,
        /// Router mode: restrict serving to the unique groups of these
        /// widths (the groups the addressed shard owns on the hash
        /// ring). `None` — the single-process default — serves every
        /// group. Warm starts are width-local, so a width-filtered serve
        /// produces byte-identical pulses for the owned groups.
        only_qubits: Option<Vec<usize>>,
    },
    /// Batch pre-compilation of a profiled program set
    /// ([`accqoc::Session::precompile`], MST order).
    Precompile {
        /// The profiled programs as OpenQASM sources.
        programs: Vec<String>,
        /// Router mode: precompile only the unique groups of these
        /// widths (see [`Call::ServeProgram::only_qubits`]).
        only_qubits: Option<Vec<usize>>,
    },
    /// Semantic verification of a program against the library's pulses
    /// ([`accqoc::Session::verify_program`]).
    VerifyProgram {
        /// The program as OpenQASM source.
        qasm: String,
    },
    /// Library counters, server counters, and queue depth.
    Stats,
    /// A page of the live library's entry metadata (key, width, latency,
    /// pulse shape — not the amplitudes), sorted by key for stable
    /// pagination.
    Library {
        /// Maximum entries in the page (clamped to
        /// [`MAX_LIBRARY_LIMIT`]).
        limit: usize,
        /// Entries to skip (in key order) before the page starts.
        offset: usize,
    },
    /// Pulse amplitudes for an explicit key set — the router's verify
    /// path: fetch the owned pulses from each shard, then verify locally
    /// against the program's reference unitaries.
    Pulses {
        /// The canonical group keys to fetch.
        keys: Vec<UnitaryKey>,
    },
    /// Graceful shutdown: the daemon stops accepting, drains queued
    /// requests, and exits. Handled by the connection thread directly,
    /// so it works even when the admission queue is full.
    Shutdown,
}

impl Call {
    fn method(&self) -> &'static str {
        match self {
            Self::ServeProgram { .. } => "serve_program",
            Self::Precompile { .. } => "precompile",
            Self::VerifyProgram { .. } => "verify_program",
            Self::Stats => "stats",
            Self::Library { .. } => "library",
            Self::Pulses { .. } => "pulses",
            Self::Shutdown => "shutdown",
        }
    }
}

/// One request frame: an `id` the response echoes, plus the call.
///
/// # Examples
///
/// ```
/// use accqoc_server::protocol::{Call, Request};
///
/// let request = Request {
///     id: 7,
///     call: Call::ServeProgram {
///         qasm: "qreg q[1]; h q[0];".into(),
///         return_pulses: false,
///         only_qubits: None,
///     },
/// };
/// let line = request.encode();
/// assert!(!line.contains('\n'), "one frame per line");
/// assert_eq!(Request::decode(&line).unwrap(), request);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed by the response.
    pub id: u64,
    /// The method and its parameters.
    pub call: Call,
}

/// A decode failure, carrying the request id when it could be salvaged
/// from the malformed frame (0 otherwise) so the error response still
/// correlates.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeError {
    /// Best-effort id of the offending request.
    pub id: u64,
    /// The typed failure to send back.
    pub error: WireError,
}

impl Request {
    /// Serializes the request as one compact JSON line (no trailing
    /// newline; the transport appends the frame delimiter).
    pub fn encode(&self) -> String {
        // `only_qubits: None` is omitted from the frame, so a pre-router
        // client's requests are byte-identical to what it sent before the
        // field existed.
        let widths_field = |fields: &mut Vec<(String, JsonValue)>, widths: &Option<Vec<usize>>| {
            if let Some(widths) = widths {
                fields.push((
                    "only_qubits".into(),
                    JsonValue::Array(
                        widths
                            .iter()
                            .map(|&w| JsonValue::Number(w as f64))
                            .collect(),
                    ),
                ));
            }
        };
        let params = match &self.call {
            Call::ServeProgram {
                qasm,
                return_pulses,
                only_qubits,
            } => {
                let mut fields = vec![
                    ("qasm".into(), JsonValue::String(qasm.clone())),
                    ("return_pulses".into(), JsonValue::Bool(*return_pulses)),
                ];
                widths_field(&mut fields, only_qubits);
                Some(JsonValue::Object(fields))
            }
            Call::Precompile {
                programs,
                only_qubits,
            } => {
                let mut fields = vec![(
                    "programs".into(),
                    JsonValue::Array(
                        programs
                            .iter()
                            .map(|p| JsonValue::String(p.clone()))
                            .collect(),
                    ),
                )];
                widths_field(&mut fields, only_qubits);
                Some(JsonValue::Object(fields))
            }
            Call::VerifyProgram { qasm } => Some(JsonValue::Object(vec![(
                "qasm".into(),
                JsonValue::String(qasm.clone()),
            )])),
            Call::Library { limit, offset } => Some(JsonValue::Object(vec![
                ("limit".into(), JsonValue::Number(*limit as f64)),
                ("offset".into(), JsonValue::Number(*offset as f64)),
            ])),
            Call::Pulses { keys } => Some(JsonValue::Object(vec![(
                "keys".into(),
                JsonValue::Array(
                    keys.iter()
                        .map(|k| JsonValue::String(hex_encode(k.as_bytes())))
                        .collect(),
                ),
            )])),
            Call::Stats | Call::Shutdown => None,
        };
        let mut fields = vec![
            ("id".into(), JsonValue::Number(self.id as f64)),
            (
                "method".into(),
                JsonValue::String(self.call.method().to_string()),
            ),
        ];
        if let Some(params) = params {
            fields.push(("params".into(), params));
        }
        JsonValue::Object(fields).to_compact()
    }

    /// Parses one request frame.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] with [`ErrorCode::MalformedJson`],
    /// [`ErrorCode::UnknownMethod`], or [`ErrorCode::BadParams`]; the
    /// carried id is salvaged from the frame when possible.
    pub fn decode(line: &str) -> Result<Self, DecodeError> {
        let doc = json::parse(line).map_err(|e| DecodeError {
            id: 0,
            error: WireError::new(ErrorCode::MalformedJson, e.to_string()),
        })?;
        let id = doc
            .get("id")
            .and_then(JsonValue::as_usize)
            .map(|n| n as u64)
            .unwrap_or(0);
        let fail = |code, message: String| DecodeError {
            id,
            error: WireError::new(code, message),
        };
        let method = doc
            .get("method")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| fail(ErrorCode::BadParams, "missing `method`".into()))?;
        let param_str = |name: &str| {
            doc.get("params")
                .and_then(|p| p.get(name))
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| {
                    fail(
                        ErrorCode::BadParams,
                        format!("missing string param `{name}`"),
                    )
                })
        };
        let param_widths = || match doc.get("params").and_then(|p| p.get("only_qubits")) {
            None => Ok(None),
            Some(value) => value
                .as_array()
                .ok_or_else(|| {
                    fail(
                        ErrorCode::BadParams,
                        "`only_qubits` must be an array".into(),
                    )
                })?
                .iter()
                .map(|w| {
                    w.as_usize().ok_or_else(|| {
                        fail(
                            ErrorCode::BadParams,
                            "`only_qubits` holds a non-integer".into(),
                        )
                    })
                })
                .collect::<Result<Vec<_>, _>>()
                .map(Some),
        };
        let call = match method {
            "serve_program" => Call::ServeProgram {
                qasm: param_str("qasm")?,
                return_pulses: matches!(
                    doc.get("params").and_then(|p| p.get("return_pulses")),
                    Some(JsonValue::Bool(true))
                ),
                only_qubits: param_widths()?,
            },
            "precompile" => {
                let programs = doc
                    .get("params")
                    .and_then(|p| p.get("programs"))
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| {
                        fail(
                            ErrorCode::BadParams,
                            "missing array param `programs`".into(),
                        )
                    })?;
                Call::Precompile {
                    programs: programs
                        .iter()
                        .map(|p| {
                            p.as_str().map(str::to_string).ok_or_else(|| {
                                fail(ErrorCode::BadParams, "`programs` holds a non-string".into())
                            })
                        })
                        .collect::<Result<_, _>>()?,
                    only_qubits: param_widths()?,
                }
            }
            "verify_program" => Call::VerifyProgram {
                qasm: param_str("qasm")?,
            },
            "stats" => Call::Stats,
            "library" => {
                let param_count = |name: &str, default: usize| match doc
                    .get("params")
                    .and_then(|p| p.get(name))
                {
                    None => Ok(default),
                    Some(value) => value.as_usize().ok_or_else(|| {
                        fail(
                            ErrorCode::BadParams,
                            format!("param `{name}` must be a non-negative integer"),
                        )
                    }),
                };
                Call::Library {
                    limit: param_count("limit", DEFAULT_LIBRARY_LIMIT)?.min(MAX_LIBRARY_LIMIT),
                    offset: param_count("offset", 0)?,
                }
            }
            "pulses" => {
                let keys = doc
                    .get("params")
                    .and_then(|p| p.get("keys"))
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| {
                        fail(ErrorCode::BadParams, "missing array param `keys`".into())
                    })?;
                Call::Pulses {
                    keys: keys
                        .iter()
                        .map(|k| {
                            k.as_str()
                                .ok_or_else(|| {
                                    fail(ErrorCode::BadParams, "`keys` holds a non-string".into())
                                })
                                .and_then(|text| {
                                    hex_decode(text).map_err(|e| {
                                        fail(ErrorCode::BadParams, format!("bad key: {e}"))
                                    })
                                })
                                .map(UnitaryKey::from_bytes)
                        })
                        .collect::<Result<_, _>>()?,
                }
            }
            "shutdown" => Call::Shutdown,
            other => {
                return Err(fail(
                    ErrorCode::UnknownMethod,
                    format!("unknown method `{other}`"),
                ))
            }
        };
        Ok(Self { id, call })
    }
}

/// Counters the daemon keeps about itself (the library's own
/// [`LibraryStats`] ride alongside in [`StatsSnapshot`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerCounters {
    /// Connections accepted.
    pub connections_accepted: u64,
    /// Connections refused because the connection cap was reached.
    pub connections_rejected: u64,
    /// Requests a worker completed (success or typed failure).
    pub requests_served: u64,
    /// Requests rejected with [`ErrorCode::Busy`] at admission.
    pub requests_rejected_busy: u64,
    /// Malformed, oversized, or truncated frames observed.
    pub protocol_errors: u64,
    /// Serve requests that waited on another client's in-flight compile
    /// of the same group instead of compiling it again.
    pub coalesced_waits: u64,
}

impl ServerCounters {
    fn to_json_value(self) -> JsonValue {
        let field = |n: u64| JsonValue::Number(n as f64);
        JsonValue::Object(vec![
            (
                "connections_accepted".into(),
                field(self.connections_accepted),
            ),
            (
                "connections_rejected".into(),
                field(self.connections_rejected),
            ),
            ("requests_served".into(), field(self.requests_served)),
            (
                "requests_rejected_busy".into(),
                field(self.requests_rejected_busy),
            ),
            ("protocol_errors".into(), field(self.protocol_errors)),
            ("coalesced_waits".into(), field(self.coalesced_waits)),
        ])
    }

    fn from_json_value(value: &JsonValue) -> Result<Self, String> {
        let field = |name: &str| {
            value
                .get(name)
                .and_then(JsonValue::as_usize)
                .map(|n| n as u64)
                .ok_or_else(|| format!("server counters missing `{name}`"))
        };
        Ok(Self {
            connections_accepted: field("connections_accepted")?,
            connections_rejected: field("connections_rejected")?,
            requests_served: field("requests_served")?,
            requests_rejected_busy: field("requests_rejected_busy")?,
            protocol_errors: field("protocol_errors")?,
            coalesced_waits: field("coalesced_waits")?,
        })
    }
}

/// The `stats` response body.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// The shared library's hit/miss/warm/scratch/eviction counters —
    /// the same numbers [`accqoc::PulseLibrary::stats`] reports
    /// in-process.
    pub library: LibraryStats,
    /// The daemon's own counters.
    pub server: ServerCounters,
    /// Entries currently stored in the library.
    pub library_len: usize,
    /// Requests currently queued for admission.
    pub queue_depth: usize,
}

/// The summary body of a `precompile` response (the wire projection of
/// [`accqoc::PrecompileReport`] — per-group frequency tables stay
/// server-side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrecompileSummary {
    /// Programs profiled.
    pub n_programs: usize,
    /// Unique groups in the profiled category.
    pub n_unique_groups: usize,
    /// GRAPE iterations spent filling the library.
    pub total_iterations: usize,
}

/// Metadata of one library entry as the `library` method pages it out
/// (identity and shape, not the amplitude data — fetch pulses through
/// `serve_program` with `return_pulses`).
#[derive(Debug, Clone, PartialEq)]
pub struct LibraryEntryInfo {
    /// The canonical group key, hex-encoded (the same spelling the
    /// pulse-cache artifact uses).
    pub key: String,
    /// Qubits the group spans.
    pub n_qubits: usize,
    /// Minimal feasible latency of the stored pulse, nanoseconds.
    pub latency_ns: f64,
    /// GRAPE iterations spent compiling the entry.
    pub iterations: usize,
    /// Time steps in the stored pulse.
    pub n_steps: usize,
}

impl LibraryEntryInfo {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("key".into(), JsonValue::String(self.key.clone())),
            ("n_qubits".into(), JsonValue::Number(self.n_qubits as f64)),
            ("latency_ns".into(), JsonValue::Number(self.latency_ns)),
            (
                "iterations".into(),
                JsonValue::Number(self.iterations as f64),
            ),
            ("n_steps".into(), JsonValue::Number(self.n_steps as f64)),
        ])
    }

    fn from_json_value(value: &JsonValue) -> Result<Self, String> {
        let count = |name: &str| {
            value
                .get(name)
                .and_then(JsonValue::as_usize)
                .ok_or_else(|| format!("library entry missing `{name}`"))
        };
        Ok(Self {
            key: value
                .get("key")
                .and_then(JsonValue::as_str)
                .ok_or("library entry missing `key`")?
                .to_string(),
            n_qubits: count("n_qubits")?,
            latency_ns: value
                .get("latency_ns")
                .and_then(JsonValue::as_f64)
                .ok_or("library entry missing `latency_ns`")?,
            iterations: count("iterations")?,
            n_steps: count("n_steps")?,
        })
    }
}

/// One page of library entries (the `library` response body). `total`
/// counts the whole library at snapshot time, so a client pages with
/// `offset += entries.len()` until `offset >= total`.
#[derive(Debug, Clone, PartialEq)]
pub struct LibraryPage {
    /// Entries in the library when the page was cut.
    pub total: usize,
    /// The page's starting position in key order.
    pub offset: usize,
    /// The limit the page was cut with (after clamping).
    pub limit: usize,
    /// The page itself, sorted by key.
    pub entries: Vec<LibraryEntryInfo>,
}

impl LibraryPage {
    pub(crate) fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("total".into(), JsonValue::Number(self.total as f64)),
            ("offset".into(), JsonValue::Number(self.offset as f64)),
            ("limit".into(), JsonValue::Number(self.limit as f64)),
            (
                "entries".into(),
                JsonValue::Array(
                    self.entries
                        .iter()
                        .map(LibraryEntryInfo::to_json_value)
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json_value(value: &JsonValue) -> Result<Self, String> {
        let count = |name: &str| {
            value
                .get(name)
                .and_then(JsonValue::as_usize)
                .ok_or_else(|| format!("library page missing `{name}`"))
        };
        Ok(Self {
            total: count("total")?,
            offset: count("offset")?,
            limit: count("limit")?,
            entries: value
                .get("entries")
                .and_then(JsonValue::as_array)
                .ok_or("library page missing `entries`")?
                .iter()
                .map(LibraryEntryInfo::from_json_value)
                .collect::<Result<_, _>>()?,
        })
    }
}

/// A successful response body, one variant per method.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// `serve_program`: the full [`ServeReport`] the in-process path
    /// would return, plus the resolved pulses when requested.
    Serve {
        /// The serving report (same counters as in-process).
        report: ServeReport,
        /// The program's unique-group pulses, when
        /// `return_pulses: true`.
        pulses: Option<PulseCache>,
        /// Group keys the report covers whose pulses could *not* be read
        /// back — a capacity-bounded library evicted them between the
        /// serve and the response. Empty with an unbounded library; a
        /// client that requested pulses must treat these groups as
        /// unresolved instead of trusting a silently-short cache.
        missing: Vec<UnitaryKey>,
    },
    /// `precompile`: the category summary.
    Precompile(PrecompileSummary),
    /// `verify_program`: the full [`VerifyReport`].
    Verify(VerifyReport),
    /// `stats`: library + server counters.
    Stats(StatsSnapshot),
    /// `library`: one page of entry metadata.
    Library(LibraryPage),
    /// `pulses`: the requested entries, plus the keys the library no
    /// longer holds (evicted since the caller learned them).
    Pulses {
        /// The entries found, as the byte-deterministic cache artifact.
        pulses: PulseCache,
        /// Requested keys with no live entry, sorted.
        missing: Vec<UnitaryKey>,
    },
    /// `shutdown`: acknowledged; the daemon is draining.
    Shutdown,
}

impl Payload {
    /// The wire spelling of the method this payload answers.
    pub fn method(&self) -> &'static str {
        match self {
            Self::Serve { .. } => "serve_program",
            Self::Precompile(_) => "precompile",
            Self::Verify(_) => "verify_program",
            Self::Stats(_) => "stats",
            Self::Library(_) => "library",
            Self::Pulses { .. } => "pulses",
            Self::Shutdown => "shutdown",
        }
    }

    /// The payload's `result` object — shared by the legacy frame
    /// encoder and the HTTP response body.
    pub(crate) fn to_json_value(&self) -> JsonValue {
        match self {
            Payload::Serve {
                report,
                pulses,
                missing,
            } => {
                let mut result = vec![("report".into(), report.to_json_value())];
                if let Some(cache) = pulses {
                    let cache_value = json::parse(&cache.to_json())
                        .expect("pulse cache serializes to valid json");
                    result.push(("pulses".into(), cache_value));
                }
                if !missing.is_empty() {
                    result.push((
                        "missing".into(),
                        JsonValue::Array(
                            missing
                                .iter()
                                .map(|k| JsonValue::String(hex_encode(k.as_bytes())))
                                .collect(),
                        ),
                    ));
                }
                JsonValue::Object(result)
            }
            Payload::Precompile(s) => JsonValue::Object(vec![
                ("n_programs".into(), JsonValue::Number(s.n_programs as f64)),
                (
                    "n_unique_groups".into(),
                    JsonValue::Number(s.n_unique_groups as f64),
                ),
                (
                    "total_iterations".into(),
                    JsonValue::Number(s.total_iterations as f64),
                ),
            ]),
            Payload::Verify(report) => {
                json::parse(&report.to_json()).expect("verify report serializes to valid json")
            }
            Payload::Stats(s) => JsonValue::Object(vec![
                ("library".into(), s.library.to_json_value()),
                ("server".into(), s.server.to_json_value()),
                (
                    "library_len".into(),
                    JsonValue::Number(s.library_len as f64),
                ),
                (
                    "queue_depth".into(),
                    JsonValue::Number(s.queue_depth as f64),
                ),
            ]),
            Payload::Library(page) => page.to_json_value(),
            Payload::Pulses { pulses, missing } => JsonValue::Object(vec![
                (
                    "pulses".into(),
                    json::parse(&pulses.to_json()).expect("pulse cache serializes to valid json"),
                ),
                (
                    "missing".into(),
                    JsonValue::Array(
                        missing
                            .iter()
                            .map(|k| JsonValue::String(hex_encode(k.as_bytes())))
                            .collect(),
                    ),
                ),
            ]),
            Payload::Shutdown => JsonValue::Object(vec![]),
        }
    }

    /// Rebuilds a payload from a `(method, result)` pair — shared by the
    /// legacy frame decoder (and exercised by every response roundtrip
    /// test).
    pub(crate) fn from_json_value(method: &str, result: &JsonValue) -> Result<Self, String> {
        let count = |value: &JsonValue, name: &str| {
            value
                .get(name)
                .and_then(JsonValue::as_usize)
                .ok_or_else(|| format!("result missing `{name}`"))
        };
        Ok(match method {
            "serve_program" => {
                let report = result
                    .get("report")
                    .ok_or_else(|| "serve result missing `report`".to_string())
                    .and_then(|r| {
                        ServeReport::from_json_value(r).map_err(|e| format!("bad report: {e}"))
                    })?;
                let pulses = match result.get("pulses") {
                    Some(value) => Some(
                        PulseCache::from_json(&value.to_compact())
                            .map_err(|e| format!("bad pulses: {e}"))?,
                    ),
                    None => None,
                };
                let missing = match result.get("missing") {
                    None => Vec::new(),
                    Some(value) => value
                        .as_array()
                        .ok_or("`missing` is not an array")?
                        .iter()
                        .map(|k| {
                            k.as_str()
                                .ok_or_else(|| "`missing` holds a non-string".to_string())
                                .and_then(hex_decode)
                                .map(UnitaryKey::from_bytes)
                        })
                        .collect::<Result<_, _>>()?,
                };
                Payload::Serve {
                    report,
                    pulses,
                    missing,
                }
            }
            "precompile" => Payload::Precompile(PrecompileSummary {
                n_programs: count(result, "n_programs")?,
                n_unique_groups: count(result, "n_unique_groups")?,
                total_iterations: count(result, "total_iterations")?,
            }),
            "verify_program" => Payload::Verify(
                VerifyReport::from_json(&result.to_compact())
                    .map_err(|e| format!("bad verify report: {e}"))?,
            ),
            "stats" => Payload::Stats(StatsSnapshot {
                library: LibraryStats::from_json_value(
                    result.get("library").ok_or("stats missing `library`")?,
                )
                .map_err(|e| format!("bad library stats: {e}"))?,
                server: ServerCounters::from_json_value(
                    result.get("server").ok_or("stats missing `server`")?,
                )?,
                library_len: count(result, "library_len")?,
                queue_depth: count(result, "queue_depth")?,
            }),
            "library" => Payload::Library(LibraryPage::from_json_value(result)?),
            "pulses" => Payload::Pulses {
                pulses: PulseCache::from_json(
                    &result
                        .get("pulses")
                        .ok_or("pulses result missing `pulses`")?
                        .to_compact(),
                )
                .map_err(|e| format!("bad pulses: {e}"))?,
                missing: result
                    .get("missing")
                    .and_then(JsonValue::as_array)
                    .ok_or("pulses result missing `missing`")?
                    .iter()
                    .map(|k| {
                        k.as_str()
                            .ok_or_else(|| "`missing` holds a non-string".to_string())
                            .and_then(hex_decode)
                            .map(UnitaryKey::from_bytes)
                    })
                    .collect::<Result<_, _>>()?,
            },
            "shutdown" => Payload::Shutdown,
            other => return Err(format!("unknown response method `{other}`")),
        })
    }
}

/// One response frame: the echoed request id and either a typed payload
/// or a typed error.
///
/// # Examples
///
/// ```
/// use accqoc_server::protocol::{ErrorCode, Payload, Response, WireError};
///
/// let ok = Response { id: 7, body: Ok(Payload::Shutdown) };
/// assert_eq!(Response::decode(&ok.encode()).unwrap(), ok);
///
/// let err = Response {
///     id: 8,
///     body: Err(WireError::new(ErrorCode::Busy, "queue full (64)")),
/// };
/// let line = err.encode();
/// assert!(line.contains("\"busy\""));
/// assert_eq!(Response::decode(&line).unwrap(), err);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The id of the request this answers (0 when the request's id was
    /// unreadable).
    pub id: u64,
    /// Payload on success, typed error on failure.
    pub body: Result<Payload, WireError>,
}

impl Response {
    /// A failure response.
    pub fn failure(id: u64, code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            id,
            body: Err(WireError::new(code, message)),
        }
    }

    /// Serializes the response as one compact JSON line (no trailing
    /// newline).
    pub fn encode(&self) -> String {
        let mut fields = vec![("id".into(), JsonValue::Number(self.id as f64))];
        match &self.body {
            Ok(payload) => {
                fields.push(("ok".into(), JsonValue::Bool(true)));
                fields.push((
                    "method".into(),
                    JsonValue::String(payload.method().to_string()),
                ));
                fields.push(("result".into(), payload.to_json_value()));
            }
            Err(error) => {
                fields.push(("ok".into(), JsonValue::Bool(false)));
                fields.push(("error".into(), error.to_json_value()));
            }
        }
        JsonValue::Object(fields).to_compact()
    }

    /// Parses one response frame.
    ///
    /// # Errors
    ///
    /// A description of what made the frame unreadable (a *transport*
    /// failure — a readable frame carrying a server-side error decodes
    /// into `Ok` with `body: Err(..)`).
    pub fn decode(line: &str) -> Result<Self, String> {
        let doc = json::parse(line).map_err(|e| format!("response is not json: {e}"))?;
        let id = doc
            .get("id")
            .and_then(JsonValue::as_usize)
            .ok_or("response missing `id`")? as u64;
        let ok = match doc.get("ok") {
            Some(JsonValue::Bool(b)) => *b,
            _ => return Err("response missing `ok`".into()),
        };
        if !ok {
            let error = doc.get("error").ok_or("failure response missing `error`")?;
            return Ok(Self {
                id,
                body: Err(WireError::from_json_value(error)?),
            });
        }
        let method = doc
            .get("method")
            .and_then(JsonValue::as_str)
            .ok_or("success response missing `method`")?;
        let result = doc
            .get("result")
            .ok_or("success response missing `result`")?;
        Ok(Self {
            id,
            body: Ok(Payload::from_json_value(method, result)?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_all_methods() {
        let calls = vec![
            Call::ServeProgram {
                qasm: "qreg q[2]; cx q[0],q[1];".into(),
                return_pulses: true,
                only_qubits: None,
            },
            Call::ServeProgram {
                qasm: "qreg q[2]; cx q[0],q[1];".into(),
                return_pulses: false,
                only_qubits: Some(vec![1, 2]),
            },
            Call::Precompile {
                programs: vec!["qreg q[1]; h q[0];".into(), "qreg q[1]; t q[0];".into()],
                only_qubits: None,
            },
            Call::Precompile {
                programs: vec!["qreg q[1]; h q[0];".into()],
                only_qubits: Some(vec![2]),
            },
            Call::VerifyProgram {
                qasm: "qreg q[1]; x q[0];".into(),
            },
            Call::Stats,
            Call::Library {
                limit: 25,
                offset: 100,
            },
            Call::Pulses {
                keys: vec![
                    UnitaryKey::from_bytes(vec![0, 255, 16]),
                    UnitaryKey::from_bytes(vec![42]),
                ],
            },
            Call::Shutdown,
        ];
        for (i, call) in calls.into_iter().enumerate() {
            let request = Request {
                id: i as u64 + 1,
                call,
            };
            let line = request.encode();
            assert!(!line.contains('\n'));
            assert_eq!(Request::decode(&line).unwrap(), request, "{line}");
        }
    }

    #[test]
    fn request_decode_salvages_id_and_types_errors() {
        let e = Request::decode("{nope").unwrap_err();
        assert_eq!(e.error.code, ErrorCode::MalformedJson);
        assert_eq!(e.id, 0);

        let e = Request::decode(r#"{"id": 9, "method": "frobnicate"}"#).unwrap_err();
        assert_eq!(e.error.code, ErrorCode::UnknownMethod);
        assert_eq!(e.id, 9, "id salvaged from the malformed request");

        let e = Request::decode(r#"{"id": 3, "method": "serve_program"}"#).unwrap_err();
        assert_eq!(e.error.code, ErrorCode::BadParams);
        assert_eq!(e.id, 3);

        let e = Request::decode(r#"{"id": 4}"#).unwrap_err();
        assert_eq!(e.error.code, ErrorCode::BadParams);
    }

    #[test]
    fn response_roundtrip_stats_and_errors() {
        let stats = Response {
            id: 2,
            body: Ok(Payload::Stats(StatsSnapshot {
                library: LibraryStats {
                    hits: 5,
                    misses: 2,
                    warm_compiles: 1,
                    scratch_compiles: 1,
                    warm_iterations: 40,
                    scratch_iterations: 90,
                    evictions: 0,
                },
                server: ServerCounters {
                    connections_accepted: 3,
                    connections_rejected: 1,
                    requests_served: 7,
                    requests_rejected_busy: 2,
                    protocol_errors: 1,
                    coalesced_waits: 1,
                },
                library_len: 4,
                queue_depth: 0,
            })),
        };
        assert_eq!(Response::decode(&stats.encode()).unwrap(), stats);

        for code in [
            ErrorCode::MalformedJson,
            ErrorCode::UnknownMethod,
            ErrorCode::BadParams,
            ErrorCode::Oversized,
            ErrorCode::Busy,
            ErrorCode::ShuttingDown,
            ErrorCode::Qasm,
            ErrorCode::Compile,
            ErrorCode::NotFound,
            ErrorCode::MethodNotAllowed,
            ErrorCode::ShardUnavailable,
            ErrorCode::Internal,
        ] {
            let r = Response::failure(1, code, "detail");
            assert_eq!(Response::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn response_decode_rejects_unreadable_frames() {
        assert!(Response::decode("junk").is_err());
        assert!(Response::decode("{}").is_err());
        assert!(Response::decode(r#"{"id": 1}"#).is_err());
        assert!(Response::decode(r#"{"id": 1, "ok": true}"#).is_err());
        assert!(Response::decode(r#"{"id": 1, "ok": false}"#).is_err());
        assert!(
            Response::decode(r#"{"id": 1, "ok": true, "method": "nope", "result": {}}"#).is_err()
        );
    }

    #[test]
    fn library_call_defaults_and_clamps() {
        let call = Request::decode(r#"{"id": 1, "method": "library"}"#)
            .unwrap()
            .call;
        assert_eq!(
            call,
            Call::Library {
                limit: DEFAULT_LIBRARY_LIMIT,
                offset: 0
            }
        );
        let call = Request::decode(r#"{"id": 1, "method": "library", "params": {"limit": 9999}}"#)
            .unwrap()
            .call;
        assert_eq!(
            call,
            Call::Library {
                limit: MAX_LIBRARY_LIMIT,
                offset: 0
            }
        );
        let e = Request::decode(r#"{"id": 1, "method": "library", "params": {"limit": "ten"}}"#)
            .unwrap_err();
        assert_eq!(e.error.code, ErrorCode::BadParams);
    }

    #[test]
    fn library_page_roundtrips() {
        let r = Response {
            id: 5,
            body: Ok(Payload::Library(LibraryPage {
                total: 12,
                offset: 10,
                limit: 50,
                entries: vec![LibraryEntryInfo {
                    key: "00ff10".into(),
                    n_qubits: 2,
                    latency_ns: 42.5,
                    iterations: 300,
                    n_steps: 17,
                }],
            })),
        };
        assert_eq!(Response::decode(&r.encode()).unwrap(), r);
    }

    fn empty_serve_report() -> ServeReport {
        ServeReport {
            overall_latency_ns: 10.0,
            gate_based_latency_ns: 20.0,
            coverage: accqoc::CoverageStats {
                covered: 0,
                total: 0,
            },
            groups: vec![],
            n_compiled: 0,
            n_warm_started: 0,
            dynamic_iterations: 0,
        }
    }

    #[test]
    fn serve_missing_keys_roundtrip_and_absent_by_default() {
        let r = Response {
            id: 1,
            body: Ok(Payload::Serve {
                report: empty_serve_report(),
                pulses: None,
                missing: vec![UnitaryKey::from_bytes(vec![0, 255, 16])],
            }),
        };
        let line = r.encode();
        assert!(line.contains("\"missing\""), "{line}");
        assert!(line.contains("\"00ff10\""), "{line}");
        assert_eq!(Response::decode(&line).unwrap(), r);

        // No missing keys → no `missing` field on the wire.
        let r_empty = Response {
            id: 1,
            body: Ok(Payload::Serve {
                report: empty_serve_report(),
                pulses: None,
                missing: vec![],
            }),
        };
        let line = r_empty.encode();
        assert!(!line.contains("\"missing\""), "{line}");
        assert_eq!(Response::decode(&line).unwrap(), r_empty);
    }

    #[test]
    fn only_qubits_is_absent_when_none_and_typed_when_bad() {
        // A filter-less request is byte-identical to the pre-sharding
        // wire format — old clients and new daemons interoperate.
        let line = Request {
            id: 1,
            call: Call::ServeProgram {
                qasm: "qreg q[1]; h q[0];".into(),
                return_pulses: false,
                only_qubits: None,
            },
        }
        .encode();
        assert!(!line.contains("only_qubits"), "{line}");

        let e = Request::decode(
            r#"{"id": 1, "method": "serve_program",
                "params": {"qasm": "x", "only_qubits": "two"}}"#,
        )
        .unwrap_err();
        assert_eq!(e.error.code, ErrorCode::BadParams);
        let e = Request::decode(
            r#"{"id": 1, "method": "serve_program",
                "params": {"qasm": "x", "only_qubits": ["two"]}}"#,
        )
        .unwrap_err();
        assert_eq!(e.error.code, ErrorCode::BadParams);
    }

    #[test]
    fn pulses_call_types_bad_keys() {
        let e = Request::decode(r#"{"id": 1, "method": "pulses"}"#).unwrap_err();
        assert_eq!(e.error.code, ErrorCode::BadParams);
        let e = Request::decode(r#"{"id": 1, "method": "pulses", "params": {"keys": ["zz"]}}"#)
            .unwrap_err();
        assert_eq!(e.error.code, ErrorCode::BadParams);
    }

    #[test]
    fn pulses_payload_roundtrips() {
        let mut cache = PulseCache::new();
        cache.insert(
            UnitaryKey::from_bytes(vec![7, 7]),
            accqoc::CachedPulse {
                pulse: accqoc_grape::Pulse::zeros(2, 4, 1.0),
                latency_ns: 12.5,
                iterations: 3,
                n_qubits: 1,
            },
        );
        let r = Response {
            id: 4,
            body: Ok(Payload::Pulses {
                pulses: cache,
                missing: vec![UnitaryKey::from_bytes(vec![0, 255])],
            }),
        };
        assert_eq!(Response::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn hex_helpers_roundtrip() {
        let bytes = vec![0u8, 1, 15, 16, 127, 128, 255];
        assert_eq!(hex_decode(&hex_encode(&bytes)).unwrap(), bytes);
        assert!(hex_decode("0").is_err(), "odd length");
        assert!(hex_decode("zz").is_err(), "non-hex");
    }

    #[test]
    fn precompile_summary_roundtrips() {
        let r = Response {
            id: 11,
            body: Ok(Payload::Precompile(PrecompileSummary {
                n_programs: 3,
                n_unique_groups: 17,
                total_iterations: 4242,
            })),
        };
        assert_eq!(Response::decode(&r.encode()).unwrap(), r);
    }
}
