//! In-flight compile coalescing: two clients asking for the same group
//! trigger one GRAPE run.
//!
//! The serving path is idempotent per group — whoever compiles a group
//! first publishes it into the shared [`PulseLibrary`], and every later
//! request is an exact-key hit. What the library cannot prevent on its
//! own is the *concurrent* case: two workers both miss on the same key
//! and both pay the (seconds-long) GRAPE compile. [`InflightGroups`]
//! closes that window. Before serving a program, a worker claims every
//! group key the program still misses; a key already claimed by another
//! worker makes the claimant wait until the owner releases (by which
//! time the key is in the library and resolves as a hit).
//!
//! Claims are all-or-nothing under one mutex: a worker never holds a
//! partial claim while waiting, so overlapping programs cannot deadlock,
//! and programs with disjoint group sets claim and compile fully in
//! parallel.
//!
//! With the default **unbounded** library the coalescing guarantee is
//! exact: a key present at claim time stays present, so every group is
//! compiled at most once. With a capacity-bounded library it is
//! best-effort — a key the claim check saw as present can be evicted
//! before the serve reads it, in which case the serve recompiles it
//! without holding a claim and a concurrent request may duplicate that
//! one compile. Duplicates are idempotent (last insert wins on the same
//! canonical key), just wasted work; bound the library only when
//! eviction pressure is worth that trade.
//!
//! [`PulseLibrary`]: accqoc::PulseLibrary

use std::collections::HashSet;
use std::sync::{Condvar, Mutex, MutexGuard};

use accqoc_circuit::UnitaryKey;

/// The set of group keys currently being compiled by some worker.
#[derive(Debug, Default)]
pub struct InflightGroups {
    claimed: Mutex<HashSet<UnitaryKey>>,
    released: Condvar,
}

/// A claim over a set of group keys; releasing (on drop) wakes every
/// waiting worker.
#[derive(Debug)]
pub struct GroupClaim<'a> {
    table: &'a InflightGroups,
    keys: Vec<UnitaryKey>,
    waited: bool,
}

impl GroupClaim<'_> {
    /// `true` when the claimant had to wait for another worker's
    /// in-flight compile of a shared group (the coalesced case).
    pub fn waited(&self) -> bool {
        self.waited
    }

    /// Keys this claim holds (the groups the claimant will compile).
    pub fn keys(&self) -> &[UnitaryKey] {
        &self.keys
    }
}

impl Drop for GroupClaim<'_> {
    fn drop(&mut self) {
        if self.keys.is_empty() {
            return;
        }
        let mut claimed = self.table.lock();
        for key in &self.keys {
            claimed.remove(key);
        }
        drop(claimed);
        self.table.released.notify_all();
    }
}

impl InflightGroups {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, HashSet<UnitaryKey>> {
        self.claimed
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Claims every key of `wanted` that `missing` still reports absent
    /// (callers pass a library-containment probe). Blocks while any
    /// still-missing key is claimed by another worker; by the time this
    /// returns, every wanted key is either claimed by the caller or
    /// published (no longer missing).
    ///
    /// `missing` is re-evaluated after each wake-up, so keys another
    /// worker published while we waited are not claimed (they will
    /// resolve as library hits).
    pub fn claim<'a>(
        &'a self,
        wanted: &[UnitaryKey],
        missing: impl Fn(&UnitaryKey) -> bool,
    ) -> GroupClaim<'a> {
        let mut waited = false;
        let mut claimed = self.lock();
        loop {
            let need: Vec<&UnitaryKey> = wanted.iter().filter(|k| missing(k)).collect();
            if need.iter().any(|k| claimed.contains(*k)) {
                waited = true;
                claimed = self
                    .released
                    .wait(claimed)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                continue;
            }
            let keys: Vec<UnitaryKey> = need.into_iter().cloned().collect();
            for key in &keys {
                claimed.insert(key.clone());
            }
            return GroupClaim {
                table: self,
                keys,
                waited,
            };
        }
    }

    /// Keys currently claimed (for observability/tests).
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accqoc_linalg::Mat;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn key(n: u8) -> UnitaryKey {
        UnitaryKey::from_bytes(vec![n; 4])
    }

    #[test]
    fn claims_only_missing_keys() {
        let table = InflightGroups::new();
        let wanted = [key(1), key(2), key(3)];
        let claim = table.claim(&wanted, |k| *k != key(2));
        assert_eq!(claim.keys().len(), 2);
        assert!(!claim.waited());
        assert_eq!(table.len(), 2);
        drop(claim);
        assert!(table.is_empty());
    }

    #[test]
    fn second_claimant_waits_until_release_then_skips_published_keys() {
        let table = Arc::new(InflightGroups::new());
        let published = Arc::new(AtomicUsize::new(0));
        let wanted = [key(7)];

        let first = table.claim(&wanted, |_| true);
        assert_eq!(first.keys().len(), 1);

        let waiter = {
            let table = Arc::clone(&table);
            let published = Arc::clone(&published);
            std::thread::spawn(move || {
                // "Missing" until the first claimant publishes.
                let claim = table.claim(&[key(7)], |_| published.load(Ordering::SeqCst) == 0);
                (claim.waited(), claim.keys().len())
            })
        };
        // Let the waiter block, then publish and release.
        std::thread::sleep(std::time::Duration::from_millis(30));
        published.store(1, Ordering::SeqCst);
        drop(first);
        let (waited, n_claimed) = waiter.join().unwrap();
        assert!(waited, "second claimant must have waited");
        assert_eq!(n_claimed, 0, "published key is not re-claimed");
        assert!(table.is_empty());
    }

    #[test]
    fn disjoint_claims_do_not_interact() {
        let table = InflightGroups::new();
        let a = table.claim(&[key(1)], |_| true);
        let b = table.claim(&[key(2)], |_| true);
        assert!(!b.waited(), "disjoint key sets claim concurrently");
        assert_eq!(table.len(), 2);
        drop(a);
        drop(b);
    }

    #[test]
    fn keys_from_real_unitaries_coalesce_by_canonical_identity() {
        // Two requests for the same canonical unitary produce the same
        // key, so the table sees them as one group.
        let u = Mat::identity(2);
        let k1 = UnitaryKey::canonical(&u, 1);
        let k2 = UnitaryKey::canonical(&u, 1);
        let table = InflightGroups::new();
        let claim = table.claim(&[k1], |_| true);
        assert!(claim.keys().contains(&k2));
    }
}
