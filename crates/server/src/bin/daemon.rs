//! The standalone daemon: `cargo run --release -p accqoc-server --bin daemon`.
//!
//! Binds a pulse-serving session on a linear-topology device and serves
//! until a client sends the `shutdown` method or `POST /shutdown` (see
//! README "Running the daemon" for both a raw-socket and a curl
//! session). Flags are parsed strictly ([`accqoc_server::cli`]): an
//! unknown flag, a missing value, or a flag-shaped value is a hard
//! error with exit code 2, never silently ignored. Run with `--help`
//! for the full flag list.

use std::sync::Arc;

use accqoc::{PersistOptions, Session};
use accqoc_hw::Topology;
use accqoc_server::cli::{self, Command, DaemonOptions};
use accqoc_server::Server;

fn main() {
    let options = match cli::parse_args(std::env::args().skip(1)) {
        Ok(Command::Serve(options)) => options,
        Ok(Command::Help) => {
            print!("{}", cli::USAGE);
            return;
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprint!("{}", cli::USAGE);
            std::process::exit(2);
        }
    };
    run(options);
}

fn run(options: DaemonOptions) {
    let mut grape = accqoc_grape::GrapeOptions::default();
    grape.stop.max_iters = options.max_iters;
    let mut builder = Session::builder()
        .topology(Topology::linear(options.qubits))
        .grape(grape);
    if let Some(capacity) = options.library_capacity {
        builder = builder.library_capacity(capacity);
    }
    if let Some(dir) = &options.data_dir {
        builder = builder
            .persistence_with(PersistOptions::new(dir).snapshot_every(options.snapshot_every));
    }
    let session = match builder.build() {
        Ok(session) => Arc::new(session),
        Err(e) => {
            eprintln!("session setup failed: {e}");
            std::process::exit(2);
        }
    };
    if let Some(report) = session.recovery_report() {
        println!(
            "recovered library from {}: {} entries ({} warm-start indexed) = snapshot {} + {} WAL records{}",
            options.data_dir.as_deref().unwrap_or("?"),
            report.entries,
            report.indexed,
            report.snapshot_entries,
            report.wal_records,
            if report.wal_truncated_bytes > 0 {
                format!(", {} torn tail bytes discarded", report.wal_truncated_bytes)
            } else {
                String::new()
            },
        );
    }

    let server = match Server::bind(Arc::clone(&session), &options.addr, options.server_config()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("bind {} failed: {e}", options.addr);
            std::process::exit(1);
        }
    };
    println!(
        "accqoc-server listening on {} ({}-qubit linear device, {} workers, queue {})",
        server.local_addr(),
        options.qubits,
        options.workers,
        options.queue,
    );
    println!(
        "stop with: {{\"id\": 1, \"method\": \"shutdown\"}}  (or: curl -X POST host:port/shutdown)"
    );
    match server.run() {
        Ok(counters) => {
            let stats = session.library().stats();
            println!(
                "drained: {} requests served ({} busy-rejected, {} coalesced waits), library {} hits / {} compiles",
                counters.requests_served,
                counters.requests_rejected_busy,
                counters.coalesced_waits,
                stats.hits,
                stats.misses,
            );
            if options.data_dir.is_some() {
                match session.checkpoint() {
                    Ok(()) => println!(
                        "checkpointed {} entries to {}",
                        session.cache_len(),
                        options.data_dir.as_deref().unwrap_or("?"),
                    ),
                    Err(e) => {
                        eprintln!("shutdown checkpoint failed: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
        Err(e) => {
            eprintln!("server failed: {e}");
            std::process::exit(1);
        }
    }
}
