//! The standalone daemon: `cargo run --release -p accqoc-server --bin daemon`.
//!
//! Binds a pulse-serving session on a linear-topology device and serves
//! until a client sends the `shutdown` method (see README "Running the
//! daemon" for a raw-socket session).
//!
//! Flags (all optional):
//!
//! - `--addr HOST:PORT` — listen address (default `127.0.0.1:7878`;
//!   port `0` picks a free port and prints it)
//! - `--qubits N` — device width, linear topology (default 5)
//! - `--workers N` — worker threads (default 2)
//! - `--queue N` — admission-queue capacity (default 64)
//! - `--max-iters N` — GRAPE iteration cap per probe (default 300)
//! - `--library-capacity N` — LRU bound on the pulse library
//!   (default unbounded; serving works at any capacity)
//! - `--data-dir PATH` — durable library tier: recover the pulse
//!   library from `PATH` on startup (cold start if empty), write-ahead
//!   log every mutation while serving, snapshot on clean shutdown
//! - `--snapshot-every N` — with `--data-dir`, also compact the log
//!   into a fresh snapshot every `N` inserts (default 128; `0` =
//!   shutdown snapshot only)

use std::sync::Arc;

use accqoc::{PersistOptions, Session};
use accqoc_hw::Topology;
use accqoc_server::{Server, ServerConfig};

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parsed<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match flag(args, name) {
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for {name}: `{raw}`");
            std::process::exit(2);
        }),
        None => default,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = flag(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let qubits: usize = parsed(&args, "--qubits", 5);
    let workers: usize = parsed(&args, "--workers", 2);
    let queue: usize = parsed(&args, "--queue", 64);
    let max_iters: usize = parsed(&args, "--max-iters", 300);

    let mut grape = accqoc_grape::GrapeOptions::default();
    grape.stop.max_iters = max_iters;
    let mut builder = Session::builder()
        .topology(Topology::linear(qubits))
        .grape(grape);
    if let Some(capacity) = flag(&args, "--library-capacity") {
        let capacity: usize = capacity.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for --library-capacity: `{capacity}`");
            std::process::exit(2);
        });
        builder = builder.library_capacity(capacity);
    }
    let data_dir = flag(&args, "--data-dir");
    if let Some(dir) = &data_dir {
        let snapshot_every: usize = parsed(&args, "--snapshot-every", 128);
        builder = builder.persistence_with(PersistOptions::new(dir).snapshot_every(snapshot_every));
    }
    let session = match builder.build() {
        Ok(session) => Arc::new(session),
        Err(e) => {
            eprintln!("session setup failed: {e}");
            std::process::exit(2);
        }
    };
    if let Some(report) = session.recovery_report() {
        println!(
            "recovered library from {}: {} entries ({} warm-start indexed) = snapshot {} + {} WAL records{}",
            data_dir.as_deref().unwrap_or("?"),
            report.entries,
            report.indexed,
            report.snapshot_entries,
            report.wal_records,
            if report.wal_truncated_bytes > 0 {
                format!(", {} torn tail bytes discarded", report.wal_truncated_bytes)
            } else {
                String::new()
            },
        );
    }

    let config = ServerConfig {
        workers,
        queue_capacity: queue,
        ..ServerConfig::default()
    };
    let server = match Server::bind(Arc::clone(&session), &addr, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("bind {addr} failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "accqoc-server listening on {} ({qubits}-qubit linear device, {workers} workers, queue {queue})",
        server.local_addr()
    );
    println!("stop with: {{\"id\": 1, \"method\": \"shutdown\"}}");
    match server.run() {
        Ok(counters) => {
            let stats = session.library().stats();
            println!(
                "drained: {} requests served ({} busy-rejected, {} coalesced waits), library {} hits / {} compiles",
                counters.requests_served,
                counters.requests_rejected_busy,
                counters.coalesced_waits,
                stats.hits,
                stats.misses,
            );
            if data_dir.is_some() {
                match session.checkpoint() {
                    Ok(()) => println!(
                        "checkpointed {} entries to {}",
                        session.cache_len(),
                        data_dir.as_deref().unwrap_or("?"),
                    ),
                    Err(e) => {
                        eprintln!("shutdown checkpoint failed: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
        Err(e) => {
            eprintln!("server failed: {e}");
            std::process::exit(1);
        }
    }
}
