//! The shard-router binary: `cargo run --release -p accqoc-server --bin router`.
//!
//! Front-end of a sharded deployment: given N running worker daemons
//! (each an `accqoc-server --data-dir base/shard-I`), the router binds
//! the same wire surfaces a single daemon speaks and forwards each
//! request to the shards owning its groups on the consistent-hash ring.
//! With `--rebalance` it instead resizes the shard stores offline (the
//! workers must be stopped) and exits. Run with `--help` for the full
//! flag list.

use std::sync::Arc;

use accqoc::Session;
use accqoc_hw::Topology;
use accqoc_server::cli::{self, RebalanceOptions, RouterCommand, RouterOptions};
use accqoc_server::{RouterHandler, Server};

fn main() {
    match cli::parse_router_args(std::env::args().skip(1)) {
        Ok(RouterCommand::Route(options)) => route(options),
        Ok(RouterCommand::Rebalance(options)) => rebalance(options),
        Ok(RouterCommand::Help) => print!("{}", cli::ROUTER_USAGE),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprint!("{}", cli::ROUTER_USAGE);
            std::process::exit(2);
        }
    }
}

fn route(options: RouterOptions) {
    // The front-end session never compiles: it groups programs, folds
    // program-level latencies, and verifies fetched pulses. It must be
    // configured like the workers' sessions or group keys disagree.
    let session = match Session::builder()
        .topology(Topology::linear(options.qubits))
        .build()
    {
        Ok(session) => Arc::new(session),
        Err(e) => {
            eprintln!("session setup failed: {e}");
            std::process::exit(2);
        }
    };
    let handler = Arc::new(RouterHandler::new(
        session,
        options.shards.clone(),
        options.router_config(),
    ));
    for (shard, addr) in options.shards.iter().enumerate() {
        println!(
            "shard {shard}: {addr} (owns widths {:?} of 1..=8)",
            (1..=8usize)
                .filter(|&w| handler.owner_of(w) == shard)
                .collect::<Vec<_>>(),
        );
    }
    let server = match Server::bind_with_handler(handler, &options.addr, options.server_config()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("bind {} failed: {e}", options.addr);
            std::process::exit(1);
        }
    };
    println!(
        "accqoc-router listening on {} ({} shards, {}-qubit linear device, {} workers, queue {})",
        server.local_addr(),
        options.shards.len(),
        options.qubits,
        options.workers,
        options.queue,
    );
    println!(
        "stop with: {{\"id\": 1, \"method\": \"shutdown\"}}  (drains the router AND the shards)"
    );
    match server.run() {
        Ok(counters) => println!(
            "drained: {} requests served ({} busy-rejected)",
            counters.requests_served, counters.requests_rejected_busy,
        ),
        Err(e) => {
            eprintln!("router failed: {e}");
            std::process::exit(1);
        }
    }
}

fn rebalance(options: RebalanceOptions) {
    let base = std::path::Path::new(&options.data_base);
    match accqoc::rebalance_with_vnodes(base, options.from, options.to, options.vnodes) {
        Ok(report) => {
            println!(
                "rebalanced {} -> {} shards under {}: {} of {} entries moved",
                report.from_shards,
                report.to_shards,
                options.data_base,
                report.entries_moved,
                report.entries_total,
            );
            for m in &report.moves {
                println!(
                    "  width {}: shard {} -> shard {} ({} entries)",
                    m.n_qubits, m.from, m.to, m.entries
                );
            }
            println!(
                "  rewritten: {:?}, untouched: {:?}, retired: {:?}",
                report.shards_rewritten, report.shards_untouched, report.shards_retired
            );
        }
        Err(e) => {
            eprintln!("rebalance failed: {e}");
            std::process::exit(1);
        }
    }
}
