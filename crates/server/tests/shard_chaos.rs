//! Deterministic shard-chaos test: kill a worker daemon mid-stream,
//! assert the router answers with a typed `shard_unavailable` error in
//! bounded time (never a hang), restart the worker from its data dir,
//! and assert the resumed stream's reports are byte-identical to an
//! uninterrupted single-process baseline — with the recovered WAL
//! prefix re-serving as exact hits, zero scratch recompiles.
//!
//! The workers are real `daemon` subprocesses with `--data-dir` per
//! shard (the deployment shape the README walks through); the router
//! runs in-process over loopback.

use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use accqoc::Session;
use accqoc_circuit::{Circuit, Gate};
use accqoc_hw::Topology;
use accqoc_server::router::{RouterConfig, RouterHandler};
use accqoc_server::{Client, ClientError, ErrorCode, Server, ServerConfig};
use accqoc_workloads::uccsd_slice;

const QUBITS: usize = 3;
const MAX_ITERS: usize = 150;

fn tiny_session() -> Session {
    let mut grape = accqoc_grape::GrapeOptions::default();
    grape.stop.max_iters = MAX_ITERS;
    Session::builder()
        .topology(Topology::linear(QUBITS))
        .grape(grape)
        .build()
        .expect("valid session")
}

struct Worker {
    child: Child,
    // Keeps the stdout pipe readable for the daemon's lifetime: dropping
    // it would make the daemon's shutdown println fail on a closed pipe.
    stdout: std::io::BufReader<std::process::ChildStdout>,
    addr: String,
}

fn spawn_worker(addr: &str, data_dir: &Path) -> Worker {
    let mut child = Command::new(env!("CARGO_BIN_EXE_daemon"))
        .args([
            "--addr",
            addr,
            "--qubits",
            &QUBITS.to_string(),
            "--max-iters",
            &MAX_ITERS.to_string(),
            "--workers",
            "1",
            "--data-dir",
            data_dir.to_str().expect("utf-8 path"),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn daemon");
    let mut stdout = std::io::BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut line = String::new();
    let addr = loop {
        line.clear();
        let n = stdout.read_line(&mut line).expect("daemon stdout");
        assert!(n > 0, "daemon exited before announcing its address");
        if let Some(rest) = line.strip_prefix("accqoc-server listening on ") {
            break rest
                .split_whitespace()
                .next()
                .expect("address after prefix")
                .to_string();
        }
    };
    Worker {
        child,
        stdout,
        addr,
    }
}

fn temp_base() -> PathBuf {
    let base = std::env::temp_dir().join(format!("accqoc-shard-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("create temp base");
    base
}

#[test]
fn killed_shard_yields_typed_error_and_resumes_byte_identically() {
    let base = temp_base();

    // The stream: two distinct programs, a repeat of the first (the
    // position the chaos hits — in the baseline it is all exact hits),
    // then two fresh programs that exercise post-recovery compiles and
    // warm starts on both active shards.
    let programs = [
        Circuit::from_gates(QUBITS, [Gate::H(0), Gate::Cx(0, 1), Gate::T(2)]),
        uccsd_slice(QUBITS, 0, 0.10),
        uccsd_slice(QUBITS, 0, 0.14),
        Circuit::from_gates(QUBITS, [Gate::Rz(0, 0.3), Gate::Cx(1, 2), Gate::H(1)]),
    ];
    let stream = [0usize, 1, 0, 2, 3];
    const KILL_AT: usize = 2;

    // Uninterrupted single-process baseline.
    let baseline = tiny_session();
    let base_reports: Vec<_> = stream
        .iter()
        .map(|&i| baseline.serve_program(&programs[i]).expect("serves"))
        .collect();
    assert!(
        base_reports[KILL_AT].groups.iter().all(|g| g.hit),
        "the chaos position must be an all-hits repeat in the baseline"
    );

    // Three workers (shard 1 owns no width at 3 shards — it idles, as
    // the pinned ring layout says), each a subprocess with its own
    // durable store under base/shard-<i>.
    let mut workers: Vec<Worker> = (0..3)
        .map(|i| spawn_worker("127.0.0.1:0", &base.join(format!("shard-{i}"))))
        .collect();
    let shard_addrs: Vec<String> = workers.iter().map(|w| w.addr.clone()).collect();

    // Tight retry budget so deadness is detected fast; the read timeout
    // stays generous because live compiles take real time.
    let config = RouterConfig {
        attempts: 2,
        backoff: Duration::from_millis(5),
        connect_timeout: Duration::from_millis(500),
        read_timeout: Duration::from_secs(60),
        ..RouterConfig::default()
    };
    let handler = Arc::new(RouterHandler::new(
        Arc::new(tiny_session()),
        shard_addrs.clone(),
        config,
    ));
    // Width 2 routes to shard 2 at 3 shards: that is the kill target —
    // it owns every entangling group of the stream.
    assert_eq!(handler.owner_of(2), 2);
    let router = Server::bind_with_handler(handler, "127.0.0.1:0", ServerConfig::default())
        .expect("bind router");
    let router_addr = router.local_addr();
    let router_handle = std::thread::spawn(move || router.run());
    let mut client = Client::connect(router_addr).expect("connect router");

    // Serve the prefix; these compile the shard libraries.
    for pos in 0..KILL_AT {
        let (report, _, _) = client
            .serve_program_full(&programs[stream[pos]], false)
            .expect("prefix serves");
        assert_eq!(report, base_reports[pos], "prefix diverged at {pos}");
    }

    // Chaos: kill the width-2 owner mid-stream.
    workers[2].child.kill().expect("kill shard 2");
    workers[2].child.wait().expect("reap shard 2");

    // The next request needs shard 2: the router must answer with the
    // typed error, bounded by its retry budget — never a hang.
    let started = std::time::Instant::now();
    let err = client
        .serve_program_full(&programs[stream[KILL_AT]], false)
        .expect_err("the width-2 owner is dead");
    let elapsed = started.elapsed();
    match err {
        ClientError::Remote(wire) => assert_eq!(
            wire.code,
            ErrorCode::ShardUnavailable,
            "expected shard_unavailable, got {wire}"
        ),
        other => panic!("expected a typed remote error, got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_secs(30),
        "shard death must be detected in bounded time, took {elapsed:?}"
    );

    // Restart the worker from its data dir on the same address; the WAL
    // replay restores its library slice.
    workers[2] = spawn_worker(&shard_addrs[2], &base.join("shard-2"));

    // The failed request now succeeds, byte-identical to the baseline's
    // uninterrupted report at this position: the recovered entries serve
    // as exact hits, not recompiles.
    let (report, _, _) = client
        .serve_program_full(&programs[stream[KILL_AT]], false)
        .expect("resumes after restart");
    assert_eq!(report, base_reports[KILL_AT], "resume diverged");

    // Straight to the restarted shard: its recovered prefix re-served as
    // hits — zero scratch (and zero warm) recompiles of persisted groups.
    let mut direct = Client::connect(&*workers[2].addr).expect("connect restarted shard");
    let stats = direct.stats().expect("shard stats");
    assert!(
        stats.library.hits > 0,
        "recovered entries must serve as hits"
    );
    assert_eq!(stats.library.scratch_compiles, 0, "no scratch recompiles");
    assert_eq!(stats.library.warm_compiles, 0, "no warm recompiles");
    assert_eq!(
        stats.library_len,
        base_reports[..KILL_AT]
            .iter()
            .flat_map(|r| r.groups.iter())
            .filter(|g| g.n_qubits == 2)
            .map(|g| &g.key)
            .collect::<std::collections::HashSet<_>>()
            .len(),
        "the recovered store holds exactly the width-2 groups compiled before the kill"
    );
    drop(direct);

    // The rest of the stream compiles fresh groups on both shards —
    // post-recovery warm-start chains continue byte-identically.
    for pos in KILL_AT + 1..stream.len() {
        let (report, _, _) = client
            .serve_program_full(&programs[stream[pos]], false)
            .expect("tail serves");
        assert_eq!(report, base_reports[pos], "tail diverged at {pos}");
    }

    // One shutdown through the router drains the whole deployment.
    client.shutdown().expect("shutdown");
    router_handle
        .join()
        .expect("router thread")
        .expect("router ran");
    for mut worker in workers {
        let status = worker.child.wait().expect("worker exits");
        assert!(status.success(), "worker exited with {status}");
        // Drain whatever the daemon printed while shutting down.
        let mut rest = String::new();
        use std::io::Read;
        worker.stdout.read_to_string(&mut rest).ok();
    }
    let _ = std::fs::remove_dir_all(&base);
}
