//! End-to-end transparency of the sharded tier: a golden + UCCSD stream
//! through a 3-shard deployment (three worker daemons + the router, all
//! over loopback) produces byte-identical serve reports and pulses, and
//! identical library counters summed across shards, versus the
//! in-process `Session::serve_program` path on one session.

use std::sync::Arc;

use accqoc::Session;
use accqoc_circuit::{Circuit, Gate};
use accqoc_hw::Topology;
use accqoc_server::router::{RouterConfig, RouterHandler};
use accqoc_server::{Client, Server, ServerConfig};
use accqoc_workloads::{arrival_stream, uccsd_slice};

const QUBITS: usize = 3;

fn tiny_session() -> Session {
    let mut grape = accqoc_grape::GrapeOptions::default();
    grape.stop.max_iters = 150;
    Session::builder()
        .topology(Topology::linear(QUBITS))
        .grape(grape)
        .build()
        .expect("valid session")
}

fn boot<H: accqoc_server::CallHandler + Send + 'static>(
    server: Server<H>,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<std::io::Result<accqoc_server::ServerCounters>>,
) {
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

/// A small mixed stream: golden-style fixed programs plus a UCCSD theta
/// sweep (the warm-start workload), with zipf repeats for exact hits.
fn programs() -> Vec<Circuit> {
    let mut programs = vec![
        Circuit::from_gates(QUBITS, [Gate::H(0), Gate::Cx(0, 1), Gate::T(2)]),
        Circuit::from_gates(QUBITS, [Gate::Rz(0, 0.3), Gate::Cx(1, 2), Gate::H(1)]),
        Circuit::from_gates(QUBITS, [Gate::Cx(0, 1), Gate::Rz(2, -0.7), Gate::H(0)]),
    ];
    for (slice, theta) in [(0usize, 0.10f64), (1, 0.14), (0, 0.18)] {
        programs.push(uccsd_slice(QUBITS, slice, theta));
    }
    programs
}

#[test]
fn three_shard_deployment_is_byte_transparent() {
    let programs = programs();
    let stream = arrival_stream(programs.len(), 10, 7);

    // In-process baseline: one session serves the whole stream.
    let baseline = tiny_session();
    let mut base_reports = Vec::new();
    for &i in &stream {
        base_reports.push(baseline.serve_program(&programs[i]).expect("serves"));
    }

    // The deployment: three worker daemons, each with its own (equally
    // configured) session, and the router in front.
    let workers: Vec<Arc<Session>> = (0..3).map(|_| Arc::new(tiny_session())).collect();
    let mut shard_addrs = Vec::new();
    let mut worker_handles = Vec::new();
    for session in &workers {
        let server = Server::bind(Arc::clone(session), "127.0.0.1:0", ServerConfig::default())
            .expect("bind worker");
        let (addr, handle) = boot(server);
        shard_addrs.push(addr.to_string());
        worker_handles.push(handle);
    }
    let handler = Arc::new(RouterHandler::new(
        Arc::new(tiny_session()),
        shard_addrs,
        RouterConfig::default(),
    ));
    let router = Server::bind_with_handler(handler, "127.0.0.1:0", ServerConfig::default())
        .expect("bind router");
    let (router_addr, router_handle) = boot(router);

    // The same stream, in order, through the router: every serve report
    // must be byte-identical to the in-process baseline's.
    let mut client = Client::connect(router_addr).expect("connect router");
    for (&i, expected) in stream.iter().zip(&base_reports) {
        let (report, pulses, missing) = client
            .serve_program_full(&programs[i], true)
            .expect("router serves");
        assert!(missing.is_empty(), "unbounded workers never evict");
        assert_eq!(&report, expected, "serve report diverged on program {i}");
        let pulses = pulses.expect("pulses were requested");
        for group in &report.groups {
            assert!(pulses.contains(&group.key), "returned cache misses a group");
        }
    }

    // Verification through the router (fetch pulses from the owners,
    // verify locally) matches verifying against the baseline library.
    for &i in &[stream[0], *stream.last().expect("non-empty stream")] {
        let expected = baseline.verify_program(&programs[i]).expect("verifies");
        let report = client
            .verify_program(&programs[i])
            .expect("router verifies");
        assert_eq!(report, expected, "verify report diverged on program {i}");
    }

    // Aggregates: summed shard counters equal the single-process ones,
    // and the merged library page walks the same key set.
    let stats = client.stats().expect("router stats");
    assert_eq!(stats.library, baseline.library().stats());
    assert_eq!(stats.library_len, baseline.cache_len());
    let page = client.library(500, 0).expect("router library");
    assert_eq!(page.total, baseline.cache_len());
    let mut expected_keys: Vec<String> = baseline
        .cache_snapshot()
        .iter()
        .map(|(k, _)| {
            k.as_bytes()
                .iter()
                .map(|b| format!("{b:02x}"))
                .collect::<String>()
        })
        .collect();
    expected_keys.sort();
    let merged_keys: Vec<String> = page.entries.iter().map(|e| e.key.clone()).collect();
    assert_eq!(merged_keys, expected_keys, "merged page order diverged");

    // The union of the shard libraries is byte-identical to the
    // baseline library.
    let mut union = accqoc::PulseCache::new();
    for session in &workers {
        union.merge(session.cache_snapshot());
    }
    assert_eq!(union.to_json(), baseline.cache_snapshot().to_json());

    // No shard holds a group another shard also holds (the partition is
    // a partition), and at 3 shards the pinned layout applies: width 1
    // on shard 0, width 2 on shard 2, shard 1 idle.
    let lens: Vec<usize> = workers.iter().map(|s| s.cache_len()).collect();
    assert_eq!(lens.iter().sum::<usize>(), baseline.cache_len());
    assert_eq!(lens[1], 0, "no width routes to shard 1 at 3 shards");
    assert!(lens[0] > 0 && lens[2] > 0, "both active shards compiled");

    // One shutdown through the router drains the whole deployment.
    client.shutdown().expect("shutdown");
    router_handle
        .join()
        .expect("router thread")
        .expect("router ran");
    for handle in worker_handles {
        handle.join().expect("worker thread").expect("worker ran");
    }
}
