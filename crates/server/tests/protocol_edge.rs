//! Protocol framing edge cases over a live loopback daemon: truncated
//! frames, oversized request lines, unknown methods, malformed JSON, and
//! clients that disconnect mid-request. Every case must produce a typed
//! error response (when a response is possible at all) and must leave
//! the daemon serving subsequent connections.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use accqoc::Session;
use accqoc_hw::Topology;
use accqoc_server::{Client, ErrorCode, Server, ServerConfig};

/// Boots a daemon on an ephemeral port with a tiny 2-qubit session and
/// returns its address plus the join handle of the serving thread.
fn boot(
    config: ServerConfig,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<std::io::Result<accqoc_server::ServerCounters>>,
) {
    let mut grape = accqoc_grape::GrapeOptions::default();
    grape.stop.max_iters = 200;
    let session = Arc::new(
        Session::builder()
            .topology(Topology::linear(2))
            .grape(grape)
            .build()
            .expect("valid session"),
    );
    let server = Server::bind(session, "127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn raw_request(addr: std::net::SocketAddr, line: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(line.as_bytes()).expect("write");
    stream.write_all(b"\n").expect("write newline");
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    response.trim_end().to_string()
}

fn assert_error_code(response: &str, expected: &str) {
    assert!(
        response.contains(&format!("\"{expected}\"")),
        "expected `{expected}` error, got: {response}"
    );
    assert!(response.contains("\"ok\": false"), "{response}");
}

#[test]
fn framing_violations_get_typed_errors_and_daemon_stays_up() {
    let (addr, handle) = boot(ServerConfig::default());

    // Malformed JSON → typed error, connection stays usable for the
    // next (valid) frame.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"{this is not json\n").expect("write");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut response = String::new();
        reader.read_line(&mut response).expect("read");
        assert_error_code(response.trim_end(), "malformed_json");
        // Same connection still serves valid requests.
        stream
            .write_all(b"{\"id\": 5, \"method\": \"stats\"}\n")
            .expect("write");
        response.clear();
        reader.read_line(&mut response).expect("read");
        assert!(response.contains("\"ok\": true"), "{response}");
        assert!(response.contains("\"id\": 5"), "{response}");
    }

    // Unknown method → typed error echoing the salvaged id.
    let response = raw_request(addr, r#"{"id": 41, "method": "frobnicate"}"#);
    assert_error_code(&response, "unknown_method");
    assert!(response.contains("\"id\": 41"), "{response}");

    // Missing params → typed error.
    let response = raw_request(addr, r#"{"id": 42, "method": "serve_program"}"#);
    assert_error_code(&response, "bad_params");

    // Bad QASM inside valid framing → typed qasm error from the worker.
    let response = raw_request(
        addr,
        r#"{"id": 43, "method": "serve_program", "params": {"qasm": "qreg q[1]; warp q[0];"}}"#,
    );
    assert_error_code(&response, "qasm");

    // Truncated frame: a client sends half a request and hangs up.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(br#"{"id": 44, "method": "sta"#)
            .expect("write partial");
        drop(stream); // no newline ever arrives
    }

    // Client disconnects mid-request: request admitted, client gone
    // before the response lands. The daemon must absorb the dead socket.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"{\"id\": 45, \"method\": \"stats\"}\n")
            .expect("write");
        drop(stream); // vanish without reading the response
    }

    // The daemon survived all of the above and still answers.
    let mut client = Client::connect(addr).expect("daemon is still up");
    let stats = client.stats().expect("stats still served");
    assert!(
        stats.server.protocol_errors >= 2,
        "malformed + unknown + bad-params + truncated frames must be counted, got {}",
        stats.server.protocol_errors
    );
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean run");
}

#[test]
fn oversized_request_line_is_rejected_and_connection_closed() {
    let (addr, handle) = boot(ServerConfig {
        max_line_bytes: 256,
        ..ServerConfig::default()
    });

    let mut stream = TcpStream::connect(addr).expect("connect");
    let huge = vec![b'x'; 4096];
    stream.write_all(&huge).expect("write oversized");
    stream.write_all(b"\n").expect("newline");
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response).expect("read");
    assert_error_code(response.trim_end(), "oversized");
    // The daemon closes the offending connection…
    response.clear();
    assert_eq!(reader.read_line(&mut response).expect("eof"), 0);
    // …but keeps serving new ones.
    let mut client = Client::connect(addr).expect("daemon is still up");
    assert!(client.stats().is_ok());
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean run");
}

#[test]
fn connection_limit_refusal_is_typed_busy() {
    let (addr, handle) = boot(ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    });
    // Fill the only slot with an idle connection…
    let parked = TcpStream::connect(addr).expect("first connection");
    std::thread::sleep(std::time::Duration::from_millis(100));
    // …so the next connection is refused with an id-0 `busy` frame
    // before it sends anything (read it raw — writing first would race
    // the server-side close).
    {
        let refused = TcpStream::connect(addr).expect("TCP connect still succeeds");
        let mut reader = BufReader::new(refused);
        let mut frame = String::new();
        reader.read_line(&mut frame).expect("refusal frame");
        let response = accqoc_server::Response::decode(frame.trim_end()).expect("refusal decodes");
        assert_eq!(response.id, 0);
        match response.body {
            Err(e) => assert_eq!(e.code, ErrorCode::Busy, "{e}"),
            Ok(p) => panic!("expected busy refusal, got {p:?}"),
        }
    }
    // Freeing the slot lets a new client in (give the reader a poll tick
    // to notice the EOF and decrement the connection count).
    drop(parked);
    let mut client = loop {
        std::thread::sleep(std::time::Duration::from_millis(60));
        let mut candidate = Client::connect(addr).expect("connect");
        if candidate.stats().is_ok() {
            break candidate;
        }
    };
    client.shutdown().expect("shutdown");
    let counters = handle.join().expect("server thread").expect("clean run");
    assert!(counters.connections_rejected >= 1);
}

#[test]
fn client_surfaces_id_zero_refusals_as_remote_errors() {
    // A stub daemon that answers any first request with the id-0 `busy`
    // refusal frame the real accept loop emits at the connection limit:
    // the typed error must reach the caller as Remote(Busy), not as an
    // id-correlation protocol error.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind stub");
    let addr = listener.local_addr().expect("stub addr");
    let stub = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("stub accepts");
        let mut request = String::new();
        BufReader::new(stream.try_clone().expect("clone"))
            .read_line(&mut request)
            .expect("stub reads the request");
        let refusal =
            accqoc_server::Response::failure(0, ErrorCode::Busy, "connection limit reached (1)");
        stream
            .write_all(format!("{}\n", refusal.encode()).as_bytes())
            .expect("stub writes refusal");
    });
    let mut client = Client::connect(addr).expect("connect to stub");
    match client.stats() {
        Err(accqoc_server::ClientError::Remote(e)) => {
            assert_eq!(e.code, ErrorCode::Busy, "{e}");
        }
        other => panic!("expected Remote(Busy), got {other:?}"),
    }
    stub.join().expect("stub thread");
}

#[test]
fn client_surfaces_future_response_ids_as_typed_mismatch_without_wedging() {
    // A stub daemon that answers the first request with an id the
    // client never sent, then answers the second request correctly: the
    // client must surface a typed MismatchedId — not a stringly
    // protocol error — and the connection must stay usable.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind stub");
    let addr = listener.local_addr().expect("stub addr");
    let stub = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("stub accepts");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut request = String::new();
        reader.read_line(&mut request).expect("first request");
        let bogus = accqoc_server::Response {
            id: 999,
            body: Ok(accqoc_server::Payload::Shutdown),
        };
        stream
            .write_all(format!("{}\n", bogus.encode()).as_bytes())
            .expect("stub writes a future id");
        request.clear();
        reader.read_line(&mut request).expect("second request");
        let correct = accqoc_server::Response {
            id: 2,
            body: Ok(accqoc_server::Payload::Shutdown),
        };
        stream
            .write_all(format!("{}\n", correct.encode()).as_bytes())
            .expect("stub answers correctly");
    });
    let mut client = Client::connect(addr).expect("connect to stub");
    match client.shutdown() {
        Err(accqoc_server::ClientError::MismatchedId { expected, got }) => {
            assert_eq!((expected, got), (1, 999));
        }
        other => panic!("expected MismatchedId, got {other:?}"),
    }
    // Not wedged: the next call on the same connection succeeds.
    client
        .shutdown()
        .expect("the connection survives a mismatched id");
    stub.join().expect("stub thread");
}

#[test]
fn client_drains_stale_response_ids_and_keeps_its_correlation() {
    // A stub that answers request 2 with a duplicate of response 1
    // first: the stale frame is drained silently and the real answer
    // still correlates.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind stub");
    let addr = listener.local_addr().expect("stub addr");
    let stub = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("stub accepts");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut request = String::new();
        reader.read_line(&mut request).expect("first request");
        let first = accqoc_server::Response {
            id: 1,
            body: Ok(accqoc_server::Payload::Shutdown),
        };
        stream
            .write_all(format!("{}\n", first.encode()).as_bytes())
            .expect("answer 1");
        request.clear();
        reader.read_line(&mut request).expect("second request");
        // A stale duplicate of the first answer, then the real one.
        let second = accqoc_server::Response {
            id: 2,
            body: Ok(accqoc_server::Payload::Shutdown),
        };
        stream
            .write_all(format!("{}\n{}\n", first.encode(), second.encode()).as_bytes())
            .expect("stale then real");
    });
    let mut client = Client::connect(addr).expect("connect to stub");
    client.shutdown().expect("first call");
    client
        .shutdown()
        .expect("stale frame drained, real answer correlated");
    stub.join().expect("stub thread");
}

#[test]
fn full_admission_queue_rejects_with_busy() {
    // queue_capacity 0 admits nothing: every request is an immediate
    // typed `busy` rejection, yet shutdown (handled by the connection
    // thread, not the pool) still drains the daemon.
    let (addr, handle) = boot(ServerConfig {
        queue_capacity: 0,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    match client.stats() {
        Err(accqoc_server::ClientError::Remote(e)) => {
            assert_eq!(e.code, ErrorCode::Busy, "{e}");
        }
        other => panic!("expected busy rejection, got {other:?}"),
    }
    client
        .shutdown()
        .expect("shutdown works on a saturated daemon");
    let counters = handle.join().expect("server thread").expect("clean run");
    assert!(counters.requests_rejected_busy >= 1);
}
