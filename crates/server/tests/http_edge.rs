//! HTTP surface edge cases over a live loopback daemon, mirroring
//! `protocol_edge.rs` for the second wire format: pipelined requests,
//! requests dribbled in over many partial writes, oversized bodies,
//! malformed request lines, format negotiation, pagination, and the two
//! protocols sharing one daemon.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use accqoc::Session;
use accqoc_circuit::{to_qasm, Circuit, Gate};
use accqoc_hw::Topology;
use accqoc_server::{Client, Server, ServerConfig};

fn boot(
    config: ServerConfig,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<std::io::Result<accqoc_server::ServerCounters>>,
) {
    let mut grape = accqoc_grape::GrapeOptions::default();
    grape.stop.max_iters = 200;
    let session = Arc::new(
        Session::builder()
            .topology(Topology::linear(2))
            .grape(grape)
            .build()
            .expect("valid session"),
    );
    let server = Server::bind(session, "127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

/// Reads one full HTTP response off the stream: status code, lowercased
/// headers, and the exact `Content-Length` body.
fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, Vec<(String, String)>, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .unwrap_or_else(|| panic!("no status code in `{status_line}`"))
        .parse()
        .expect("numeric status");
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':').expect("header colon");
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let length: usize = headers
        .iter()
        .find(|(name, _)| name == "content-length")
        .expect("content-length header")
        .1
        .parse()
        .expect("numeric length");
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).expect("body");
    (status, headers, String::from_utf8(body).expect("utf8 body"))
}

fn shutdown_over_http(addr: std::net::SocketAddr) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"POST /shutdown HTTP/1.1\r\nContent-Length: 0\r\n\r\n")
        .expect("write shutdown");
    let mut reader = BufReader::new(stream);
    let (status, _, _) = read_response(&mut reader);
    assert_eq!(status, 200, "shutdown must be acknowledged");
}

#[test]
fn stats_with_format_negotiation_on_one_keep_alive_connection() {
    let (addr, handle) = boot(ServerConfig::default());

    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    stream
        .write_all(b"GET /stats HTTP/1.1\r\nHost: x\r\n\r\n")
        .expect("write");
    let (status, headers, body) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert!(headers.contains(&("content-type".into(), "application/json".into())));
    assert!(headers.contains(&("connection".into(), "keep-alive".into())));
    // Compact: the whole object is one line.
    assert_eq!(body.trim_end().lines().count(), 1, "{body}");
    assert!(body.contains("\"library\""), "{body}");
    assert!(body.contains("\"queue_depth\""), "{body}");

    // Same connection, pretty suffix: indented multi-line body.
    stream
        .write_all(b"GET /stats.pretty HTTP/1.1\r\nHost: x\r\n\r\n")
        .expect("write");
    let (status, _, pretty) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert!(pretty.trim_end().lines().count() > 5, "{pretty}");

    // And the explicit .json suffix matches the default spelling.
    stream
        .write_all(b"GET /stats.json HTTP/1.1\r\nHost: x\r\n\r\n")
        .expect("write");
    let (status, _, compact) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert_eq!(compact.trim_end().lines().count(), 1, "{compact}");

    shutdown_over_http(addr);
    handle.join().expect("server thread").expect("clean run");
}

#[test]
fn post_serve_executes_a_program_and_returns_the_report() {
    let (addr, handle) = boot(ServerConfig::default());

    let circuit = Circuit::from_gates(2, [Gate::H(0), Gate::Cx(0, 1)]);
    let qasm = to_qasm(&circuit).replace('"', "\\\"").replace('\n', "\\n");
    let body = format!("{{\"qasm\": \"{qasm}\", \"return_pulses\": true}}");
    let request = format!(
        "POST /serve HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("write");
    let mut reader = BufReader::new(stream);
    let (status, _, response) = read_response(&mut reader);
    assert_eq!(status, 200, "{response}");
    assert!(response.contains("\"report\""), "{response}");
    assert!(response.contains("\"overall_latency_ns\""), "{response}");
    assert!(
        response.contains("\"pulses\""),
        "return_pulses was requested: {response}"
    );

    shutdown_over_http(addr);
    handle.join().expect("server thread").expect("clean run");
}

#[test]
fn pipelined_requests_answer_in_request_order() {
    let (addr, handle) = boot(ServerConfig::default());

    // Three requests in one write, no reads in between: responses must
    // come back complete and in order.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            b"GET /stats HTTP/1.1\r\nHost: x\r\n\r\n\
              GET /library?limit=5 HTTP/1.1\r\nHost: x\r\n\r\n\
              GET /stats.pretty HTTP/1.1\r\nHost: x\r\n\r\n",
        )
        .expect("pipelined write");
    let mut reader = BufReader::new(stream);
    let (s1, _, b1) = read_response(&mut reader);
    let (s2, _, b2) = read_response(&mut reader);
    let (s3, _, b3) = read_response(&mut reader);
    assert_eq!((s1, s2, s3), (200, 200, 200));
    assert!(b1.contains("\"queue_depth\""), "first is stats: {b1}");
    assert!(b2.contains("\"entries\""), "second is library: {b2}");
    assert!(
        b3.trim_end().lines().count() > 5,
        "third is pretty stats: {b3}"
    );

    shutdown_over_http(addr);
    handle.join().expect("server thread").expect("clean run");
}

#[test]
fn requests_split_across_many_partial_writes_still_frame() {
    let (addr, handle) = boot(ServerConfig::default());

    // The request arrives a few bytes at a time — the connection state
    // machine must buffer partial frames across event-loop ticks.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = b"GET /library?limit=2&offset=0 HTTP/1.1\r\nHost: dribble\r\n\r\n";
    for chunk in request.chunks(5) {
        stream.write_all(chunk).expect("partial write");
        stream.flush().expect("flush");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let mut reader = BufReader::new(stream);
    let (status, _, body) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert!(body.contains("\"total\""), "{body}");

    shutdown_over_http(addr);
    handle.join().expect("server thread").expect("clean run");
}

#[test]
fn responses_buffer_when_the_client_reads_late() {
    let (addr, handle) = boot(ServerConfig::default());

    // Queue up many responses without reading any of them: the daemon
    // must buffer under the backpressure and deliver everything once
    // the client finally drains, still in order.
    let mut stream = TcpStream::connect(addr).expect("connect");
    const N: usize = 32;
    for _ in 0..N {
        stream
            .write_all(b"GET /stats HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("write");
    }
    std::thread::sleep(std::time::Duration::from_millis(50));
    let mut reader = BufReader::new(stream);
    for i in 0..N {
        let (status, _, body) = read_response(&mut reader);
        assert_eq!(status, 200, "response {i}");
        assert!(body.contains("\"queue_depth\""), "response {i}: {body}");
    }

    shutdown_over_http(addr);
    handle.join().expect("server thread").expect("clean run");
}

#[test]
fn oversized_body_gets_413_and_the_connection_closes() {
    let (addr, handle) = boot(ServerConfig {
        max_line_bytes: 256,
        ..ServerConfig::default()
    });

    let mut stream = TcpStream::connect(addr).expect("connect");
    // The declared length alone exceeds the cap — the daemon must
    // refuse without waiting for (or reading) the body.
    stream
        .write_all(b"POST /serve HTTP/1.1\r\nContent-Length: 100000\r\n\r\n")
        .expect("write");
    let mut reader = BufReader::new(stream);
    let (status, headers, body) = read_response(&mut reader);
    assert_eq!(status, 413, "{body}");
    assert!(body.contains("\"oversized\""), "{body}");
    assert!(headers.contains(&("connection".into(), "close".into())));
    let mut rest = String::new();
    assert_eq!(
        reader.read_to_string(&mut rest).expect("eof"),
        0,
        "connection must close after a framing violation"
    );

    // The daemon itself keeps serving.
    let mut client = Client::connect(addr).expect("daemon is still up");
    assert!(client.stats().is_ok());
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean run");
}

#[test]
fn malformed_request_line_gets_400_and_the_connection_closes() {
    let (addr, handle) = boot(ServerConfig::default());

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"GET /stats\r\n\r\n")
        .expect("write request line without a version");
    let mut reader = BufReader::new(stream);
    let (status, _, body) = read_response(&mut reader);
    assert_eq!(status, 400, "{body}");
    let mut rest = String::new();
    assert_eq!(reader.read_to_string(&mut rest).expect("eof"), 0);

    shutdown_over_http(addr);
    handle.join().expect("server thread").expect("clean run");
}

#[test]
fn unknown_routes_and_wrong_verbs_keep_the_connection() {
    let (addr, handle) = boot(ServerConfig::default());

    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    stream
        .write_all(b"GET /nope HTTP/1.1\r\nHost: x\r\n\r\n")
        .expect("write");
    let (status, _, body) = read_response(&mut reader);
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("\"not_found\""), "{body}");

    stream
        .write_all(b"GET /serve HTTP/1.1\r\nHost: x\r\n\r\n")
        .expect("write");
    let (status, _, body) = read_response(&mut reader);
    assert_eq!(status, 405, "{body}");
    assert!(body.contains("\"method_not_allowed\""), "{body}");

    // Routing errors leave the stream intact: the same connection still
    // serves a valid request.
    stream
        .write_all(b"GET /stats HTTP/1.1\r\nHost: x\r\n\r\n")
        .expect("write");
    let (status, _, _) = read_response(&mut reader);
    assert_eq!(status, 200);

    shutdown_over_http(addr);
    handle.join().expect("server thread").expect("clean run");
}

#[test]
fn library_pagination_pages_the_whole_library_without_overlap() {
    let (addr, handle) = boot(ServerConfig::default());

    // Fill the library through the legacy surface. Each whole 2-qubit
    // circuit collapses into one group, so two distinct programs give
    // two distinct library entries.
    let mut client = Client::connect(addr).expect("connect");
    let programs = [
        Circuit::from_gates(2, [Gate::H(0), Gate::Cx(0, 1)]),
        Circuit::from_gates(2, [Gate::T(0), Gate::Cx(0, 1)]),
    ];
    let summary = client.precompile(&programs).expect("precompile");
    assert!(summary.n_unique_groups >= 2, "need at least 2 entries");

    // …then page it out over HTTP, one entry per page.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut seen = Vec::new();
    let mut offset = 0;
    loop {
        stream
            .write_all(
                format!("GET /library?limit=1&offset={offset} HTTP/1.1\r\nHost: x\r\n\r\n")
                    .as_bytes(),
            )
            .expect("write");
        let (status, _, body) = read_response(&mut reader);
        assert_eq!(status, 200, "{body}");
        let page = accqoc::json::parse(&body).expect("page parses");
        let total = page.get("total").and_then(|v| v.as_usize()).expect("total");
        assert_eq!(total, summary.n_unique_groups);
        let entries = page
            .get("entries")
            .and_then(|v| v.as_array().map(|a| a.to_vec()))
            .expect("entries");
        if offset >= total {
            assert!(entries.is_empty(), "past-the-end page must be empty");
            break;
        }
        assert_eq!(entries.len(), 1, "limit=1 cuts one entry per page");
        let key = entries[0]
            .get("key")
            .and_then(|v| v.as_str())
            .expect("entry key")
            .to_string();
        seen.push(key);
        offset += 1;
    }
    assert_eq!(seen.len(), summary.n_unique_groups);
    let mut deduped = seen.clone();
    deduped.sort();
    deduped.dedup();
    assert_eq!(
        deduped.len(),
        seen.len(),
        "pages must not overlap: {seen:?}"
    );
    let mut sorted = seen.clone();
    sorted.sort();
    assert_eq!(sorted, seen, "key order makes pagination stable");

    // The legacy client reads the same page the HTTP surface serves.
    let page = client.library(10, 0).expect("library via line protocol");
    assert_eq!(page.total, summary.n_unique_groups);
    let legacy_keys: Vec<_> = page.entries.iter().map(|e| e.key.clone()).collect();
    assert_eq!(legacy_keys, seen);

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean run");
}
