//! End-to-end loopback tests of the serving daemon: served pulses are
//! byte-identical to the in-process `Session::serve_program` path,
//! concurrent requests for the same group coalesce into one GRAPE
//! compile, and shutdown drains cleanly.

use std::sync::Arc;

use accqoc::Session;
use accqoc_circuit::{Circuit, Gate};
use accqoc_hw::Topology;
use accqoc_server::{Client, Server, ServerConfig};

fn tiny_session() -> Session {
    let mut grape = accqoc_grape::GrapeOptions::default();
    grape.stop.max_iters = 200;
    Session::builder()
        .topology(Topology::linear(2))
        .grape(grape)
        .build()
        .expect("valid session")
}

fn boot(
    session: Arc<Session>,
    config: ServerConfig,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<std::io::Result<accqoc_server::ServerCounters>>,
) {
    let server = Server::bind(session, "127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

#[test]
fn served_pulses_are_byte_identical_to_in_process_serving() {
    let programs = [
        Circuit::from_gates(2, [Gate::H(0), Gate::Cx(0, 1)]),
        Circuit::from_gates(2, [Gate::H(0), Gate::T(1), Gate::Cx(0, 1)]),
    ];

    // In-process baseline on a fresh session.
    let baseline = tiny_session();
    let mut baseline_reports = Vec::new();
    for program in &programs {
        baseline_reports.push(baseline.serve_program(program).expect("serves"));
    }

    // The same stream through the daemon, one client, in order.
    let session = Arc::new(tiny_session());
    let (addr, handle) = boot(Arc::clone(&session), ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    for (program, expected) in programs.iter().zip(&baseline_reports) {
        let (report, pulses, missing) = client
            .serve_program_full(program, true)
            .expect("daemon serves");
        assert!(
            missing.is_empty(),
            "an unbounded library never evicts, so nothing can be missing"
        );
        // Same counters as the in-process path…
        assert_eq!(report.to_json(), expected.to_json(), "reports must agree");
        // …and byte-identical pulses: the returned artifact equals the
        // baseline library's entries for the same keys, via the
        // deterministic PulseCache serialization.
        let pulses = pulses.expect("return_pulses was requested");
        let mut expected_cache = accqoc::PulseCache::new();
        for group in &expected.groups {
            expected_cache.insert(
                group.key.clone(),
                baseline.cached(&group.key).expect("baseline holds the key"),
            );
        }
        assert_eq!(
            pulses.to_json(),
            expected_cache.to_json(),
            "served pulses must be byte-identical to in-process serving"
        );
    }

    // Daemon library state equals the baseline library state.
    assert_eq!(
        session.cache_snapshot().to_json(),
        baseline.cache_snapshot().to_json()
    );

    // verify_program over the wire agrees with the in-process verifier.
    let remote = client.verify_program(&programs[0]).expect("verifies");
    let local = baseline.verify_program(&programs[0]).expect("verifies");
    assert_eq!(remote.to_json(), local.to_json());

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean run");
}

#[test]
fn identical_concurrent_requests_coalesce_into_one_compile() {
    let session = Arc::new(tiny_session());
    let (addr, handle) = boot(
        Arc::clone(&session),
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    );

    // Two clients request the same (uncached) program at once: the
    // groups must be compiled exactly once, yet both clients get full
    // responses.
    let program = Circuit::from_gates(2, [Gate::H(0), Gate::Cx(0, 1)]);
    let n_unique = session.front_end(&program).targets.len();
    let clients: Vec<_> = (0..2)
        .map(|_| {
            let program = program.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client.serve_program(&program, false).expect("serves")
            })
        })
        .collect();
    let reports: Vec<_> = clients
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();

    // Both clients were answered with the full group set resolved.
    for (report, _) in &reports {
        assert_eq!(report.groups.len(), n_unique);
        assert_eq!(
            report.coverage.total,
            report.coverage.covered + report.n_compiled
        );
    }
    // One compile per unique group across BOTH requests: the library's
    // miss counter is exactly the program's unique-group count.
    let stats = session.library().stats();
    assert_eq!(
        stats.misses as usize, n_unique,
        "same group requested twice must compile once (misses {} vs unique {})",
        stats.misses, n_unique
    );
    assert_eq!(stats.hits as usize, n_unique, "the coalesced request hits");

    let mut client = Client::connect(addr).expect("connect");
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean run");
}

#[test]
fn shutdown_drains_and_stops_accepting() {
    let session = Arc::new(tiny_session());
    let (addr, handle) = boot(Arc::clone(&session), ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    client.shutdown().expect("shutdown acknowledged");
    let counters = handle.join().expect("server thread").expect("clean run");
    assert!(counters.connections_accepted >= 1);
    // The listener is gone; a fresh connect must fail (give the OS a
    // moment to tear the socket down).
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert!(
        std::net::TcpStream::connect(addr).is_err(),
        "daemon must stop accepting after shutdown"
    );
}

#[test]
fn precompile_then_serve_is_fully_covered() {
    let session = Arc::new(tiny_session());
    let (addr, handle) = boot(Arc::clone(&session), ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");

    let program = Circuit::from_gates(2, [Gate::H(0), Gate::Cx(0, 1)]);
    let summary = client
        .precompile(std::slice::from_ref(&program))
        .expect("precompiles");
    assert!(summary.n_unique_groups > 0);
    assert_eq!(summary.n_programs, 1);

    let (report, _) = client.serve_program(&program, false).expect("serves");
    assert_eq!(report.n_compiled, 0, "precompiled program must be all hits");
    assert_eq!(report.coverage.covered, report.coverage.total);

    let stats = client.stats().expect("stats");
    assert_eq!(stats.library_len, summary.n_unique_groups);
    assert!(stats.server.requests_served >= 3);

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean run");
}

#[test]
fn capacity_bounded_library_marks_evicted_groups_missing() {
    // A library bounded below the program's unique-group count evicts
    // entries between the serve and the `return_pulses` readback. The
    // response must name those groups in `missing` instead of shipping
    // a silently-short cache.
    let mut grape = accqoc_grape::GrapeOptions::default();
    grape.stop.max_iters = 200;
    let session = Arc::new(
        Session::builder()
            .topology(Topology::linear(3))
            .grape(grape)
            .library_capacity(1)
            .build()
            .expect("valid session"),
    );
    // Gates on the {0,1} and {1,2} pairs cannot merge into one
    // two-qubit group, so the front end yields at least two targets.
    let program = Circuit::from_gates(3, [Gate::H(0), Gate::Cx(0, 1), Gate::Cx(1, 2)]);
    let n_unique = session.front_end(&program).targets.len();
    assert!(n_unique >= 2, "the program must exceed the capacity of 1");

    let (addr, handle) = boot(Arc::clone(&session), ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    let (report, pulses, missing) = client
        .serve_program_full(&program, true)
        .expect("daemon serves");
    let pulses = pulses.expect("return_pulses was requested");

    // Everything the report covers is either returned or named missing…
    assert_eq!(report.groups.len(), n_unique);
    assert_eq!(
        pulses.len() + missing.len(),
        n_unique,
        "returned + missing must cover every group"
    );
    assert!(
        !missing.is_empty(),
        "capacity 1 with {n_unique} groups must evict at least one before readback"
    );
    // …with no key in both sets, and every key from the report.
    for key in &missing {
        assert!(
            !pulses.contains(key),
            "a key cannot be both returned and missing"
        );
        assert!(report.groups.iter().any(|g| &g.key == key));
    }
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean run");
}

#[test]
fn shutdown_drains_a_daemon_bound_to_the_wildcard_address() {
    // The old blocking accept loop woke itself with
    // `TcpStream::connect(local_addr)`, which cannot reach 0.0.0.0 —
    // shutdown hung on wildcard binds. The event loop needs no wake
    // hack; this pins that a wildcard-bound daemon drains.
    let session = Arc::new(tiny_session());
    let server = Server::bind(Arc::clone(&session), "0.0.0.0:0", ServerConfig::default())
        .expect("bind wildcard");
    let port = server.local_addr().port();
    let handle = std::thread::spawn(move || server.run());

    let mut client = Client::connect(("127.0.0.1", port)).expect("connect via loopback");
    client.stats().expect("daemon serves on the wildcard bind");
    client.shutdown().expect("shutdown acknowledged");
    let counters = handle.join().expect("server thread").expect("clean run");
    assert_eq!(counters.connections_accepted, 1);
}

#[test]
fn refused_connections_count_as_rejected_not_accepted() {
    // The old accept loop bumped `connections_accepted` before checking
    // the limit, so every refusal counted on both sides. Admission now
    // decides which counter moves: exactly one, never both.
    let session = Arc::new(tiny_session());
    let (addr, handle) = boot(
        Arc::clone(&session),
        ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect(addr).expect("first connection fills the only slot");
    client.stats().expect("admitted and served");
    {
        use std::io::BufRead;
        let refused = std::net::TcpStream::connect(addr).expect("TCP connect still succeeds");
        let mut frame = String::new();
        std::io::BufReader::new(refused)
            .read_line(&mut frame)
            .expect("refusal frame");
        assert!(frame.contains("\"busy\""), "{frame}");
    }
    client.shutdown().expect("shutdown");
    let counters = handle.join().expect("server thread").expect("clean run");
    assert_eq!(
        counters.connections_accepted, 1,
        "the refused connection must not count as accepted"
    );
    assert_eq!(counters.connections_rejected, 1);
}

#[test]
fn concurrent_uccsd_replay_coalesces_and_matches_in_process_bytes() {
    // The parameterized-workload traffic pattern end to end: several
    // clients replay the same UCCSD θ-grid family concurrently. The
    // in-flight coalescing guarantee scales from one group to a whole
    // family — total misses stay exactly the family's unique-group
    // count — and every served artifact is byte-identical to serial
    // in-process serving of the same stream.
    let family = accqoc_workloads::uccsd_family(3, 2, &accqoc_workloads::theta_grid(3));
    let session3 = || {
        let mut grape = accqoc_grape::GrapeOptions::default();
        grape.stop.max_iters = 200;
        Session::builder()
            .topology(Topology::linear(3))
            .grape(grape)
            .build()
            .expect("valid session")
    };

    // Serial in-process baseline: the byte-identity reference.
    let baseline = session3();
    let mut expected = Vec::new();
    for program in &family {
        let report = baseline.serve_program(&program.circuit).expect("serves");
        let mut cache = accqoc::PulseCache::new();
        for group in &report.groups {
            cache.insert(
                group.key.clone(),
                baseline.cached(&group.key).expect("baseline holds the key"),
            );
        }
        expected.push(cache.to_json());
    }
    let n_unique = baseline.library().stats().misses;

    let session = Arc::new(session3());
    let (addr, handle) = boot(
        Arc::clone(&session),
        ServerConfig {
            workers: 3,
            ..ServerConfig::default()
        },
    );
    let replays: Vec<_> = (0..3)
        .map(|_| {
            let family = family.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                family
                    .iter()
                    .map(|p| {
                        let (_, pulses) = client
                            .serve_program(&p.circuit, true)
                            .expect("daemon serves");
                        pulses.expect("return_pulses was requested").to_json()
                    })
                    .collect::<Vec<String>>()
            })
        })
        .collect();
    for handle in replays {
        let served = handle.join().expect("client thread");
        assert_eq!(
            served, expected,
            "daemon servings must be byte-identical to in-process serving"
        );
    }

    // Coalescing across the family: three full replays, one compile per
    // unique group — and the final library equals the baseline's.
    let stats = session.library().stats();
    assert_eq!(
        stats.misses, n_unique,
        "3 concurrent replays must compile each unique group once"
    );
    assert_eq!(
        session.cache_snapshot().to_json(),
        baseline.cache_snapshot().to_json()
    );

    let mut client = Client::connect(addr).expect("connect");
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean run");
}
