//! Property-based tests for the hardware models.

use accqoc_hw::{ControlModel, NoiseModel, Topology};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn linear_topology_distance_is_index_gap(n in 2usize..12, a in 0usize..12, b in 0usize..12) {
        prop_assume!(a < n && b < n);
        let t = Topology::linear(n);
        prop_assert_eq!(t.distance(a, b), a.abs_diff(b));
    }

    #[test]
    fn distances_satisfy_triangle_inequality(a in 0usize..14, b in 0usize..14, c in 0usize..14) {
        let t = Topology::melbourne();
        let (ab, bc, ac) = (t.distance(a, b), t.distance(b, c), t.distance(a, c));
        prop_assert!(ac <= ab + bc, "d({a},{c})={ac} > d({a},{b})+d({b},{c})={}", ab + bc);
        // Symmetry.
        prop_assert_eq!(ab, t.distance(b, a));
    }

    #[test]
    fn edge_distance_symmetry(e1 in 0usize..18, e2 in 0usize..18) {
        let t = Topology::melbourne();
        let edges = t.undirected_edges();
        prop_assume!(e1 < edges.len() && e2 < edges.len());
        prop_assert_eq!(t.edge_distance(edges[e1], edges[e2]), t.edge_distance(edges[e2], edges[e1]));
    }

    #[test]
    fn decoherence_error_monotone(t1 in 0.0f64..1e5, t2 in 0.0f64..1e5) {
        let m = NoiseModel::melbourne();
        let (lo, hi) = if t1 < t2 { (t1, t2) } else { (t2, t1) };
        prop_assert!(m.decoherence_error(lo) <= m.decoherence_error(hi) + 1e-15);
        prop_assert!((0.0..=1.0).contains(&m.decoherence_error(hi)));
    }

    #[test]
    fn hamiltonian_is_hermitian_for_any_bounded_amps(
        a in -1.0f64..1.0, b in -1.0f64..1.0, c in -1.0f64..1.0, d in -1.0f64..1.0,
    ) {
        let model = ControlModel::spin_chain(2);
        let h = model.hamiltonian(&[a, b, c, d]);
        prop_assert!(h.is_hermitian(1e-12));
    }

    #[test]
    fn clamp_is_idempotent(a in -5.0f64..5.0, b in -5.0f64..5.0) {
        let model = ControlModel::spin_chain(1);
        let mut amps = vec![a, b];
        model.clamp(&mut amps);
        let once = amps.clone();
        model.clamp(&mut amps);
        prop_assert_eq!(once, amps);
    }
}
