//! Device coupling topologies.
//!
//! The paper maps every benchmark onto the 14-qubit IBM Q Melbourne chip,
//! whose CNOTs are directed (paper Figure 10). [`Topology`] keeps the
//! directed edge list for swap/CX legality plus an undirected view and
//! all-pairs distances for mapping heuristics.

/// A directed coupling graph over physical qubits.
///
/// # Examples
///
/// ```
/// use accqoc_hw::Topology;
///
/// let melbourne = Topology::melbourne();
/// assert_eq!(melbourne.n_qubits(), 14);
/// assert!(melbourne.cx_allowed(1, 0));   // directed edge 1 → 0
/// assert!(!melbourne.cx_allowed(0, 1));  // reverse needs H-conjugation
/// assert!(melbourne.connected(0, 1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    n_qubits: usize,
    /// Directed CX edges `(control, target)`.
    edges: Vec<(usize, usize)>,
    /// All-pairs undirected hop distance (usize::MAX when disconnected).
    distances: Vec<Vec<usize>>,
}

impl Topology {
    /// Builds a topology from a directed edge list.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a qubit `>= n_qubits` or is a
    /// self-loop.
    pub fn new(n_qubits: usize, edges: Vec<(usize, usize)>) -> Self {
        for &(a, b) in &edges {
            assert!(a < n_qubits && b < n_qubits, "edge ({a},{b}) out of range");
            assert_ne!(a, b, "self-loop edge ({a},{b})");
        }
        let distances = all_pairs_distances(n_qubits, &edges);
        Self {
            n_qubits,
            edges,
            distances,
        }
    }

    /// The IBM Q Melbourne 14-qubit device (paper Figure 10): two rows
    /// with directed CNOTs.
    pub fn melbourne() -> Self {
        Self::new(
            14,
            vec![
                (1, 0),
                (1, 2),
                (2, 3),
                (4, 3),
                (4, 10),
                (5, 4),
                (5, 6),
                (5, 9),
                (6, 8),
                (7, 8),
                (9, 8),
                (9, 10),
                (11, 3),
                (11, 10),
                (11, 12),
                (12, 2),
                (13, 1),
                (13, 12),
            ],
        )
    }

    /// A linear chain `0 − 1 − … − (n−1)` with CX directed low → high.
    pub fn linear(n: usize) -> Self {
        Self::new(n, (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect())
    }

    /// A fully connected device (useful to isolate grouping effects from
    /// routing effects in tests).
    pub fn full(n: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    edges.push((a, b));
                }
            }
        }
        Self::new(n, edges)
    }

    /// Number of physical qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Directed CX edges.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Undirected edges, each listed once with `a < b`.
    pub fn undirected_edges(&self) -> Vec<(usize, usize)> {
        let mut out: Vec<(usize, usize)> = self
            .edges
            .iter()
            .map(|&(a, b)| if a < b { (a, b) } else { (b, a) })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// `true` if a CX with this control/target orientation is native.
    pub fn cx_allowed(&self, control: usize, target: usize) -> bool {
        self.edges.contains(&(control, target))
    }

    /// `true` if the qubits are adjacent (either direction).
    pub fn connected(&self, a: usize, b: usize) -> bool {
        self.edges.contains(&(a, b)) || self.edges.contains(&(b, a))
    }

    /// Undirected hop distance between two qubits.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn distance(&self, a: usize, b: usize) -> usize {
        self.distances[a][b]
    }

    /// Neighbors of a qubit (undirected view).
    pub fn neighbors(&self, q: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .edges
            .iter()
            .filter_map(|&(a, b)| {
                if a == q {
                    Some(b)
                } else if b == q {
                    Some(a)
                } else {
                    None
                }
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Distance between two undirected edges: the minimum qubit distance
    /// across endpoint pairs. Distance 0 means they share a qubit; the
    /// paper's crosstalk metric counts pairs at distance ≤ 1 as "close".
    pub fn edge_distance(&self, e1: (usize, usize), e2: (usize, usize)) -> usize {
        let mut best = usize::MAX;
        for &a in &[e1.0, e1.1] {
            for &b in &[e2.0, e2.1] {
                best = best.min(self.distance(a, b));
            }
        }
        best
    }
}

fn all_pairs_distances(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in edges {
        if !adj[a].contains(&b) {
            adj[a].push(b);
        }
        if !adj[b].contains(&a) {
            adj[b].push(a);
        }
    }
    let mut dist = vec![vec![usize::MAX; n]; n];
    for (s, row) in dist.iter_mut().enumerate() {
        // BFS from s.
        let mut queue = std::collections::VecDeque::new();
        row[s] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if row[v] == usize::MAX {
                    row[v] = row[u] + 1;
                    queue.push_back(v);
                }
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn melbourne_shape() {
        let t = Topology::melbourne();
        assert_eq!(t.n_qubits(), 14);
        assert_eq!(t.edges().len(), 18);
        // Every qubit reachable.
        for a in 0..14 {
            for b in 0..14 {
                assert!(t.distance(a, b) < usize::MAX, "({a},{b}) disconnected");
            }
        }
        // Known local structure.
        assert_eq!(t.distance(0, 1), 1);
        assert_eq!(t.distance(0, 2), 2);
        assert!(t.connected(13, 1));
        assert!(t.cx_allowed(13, 1));
        assert!(!t.cx_allowed(1, 13));
    }

    #[test]
    fn linear_distances() {
        let t = Topology::linear(5);
        assert_eq!(t.distance(0, 4), 4);
        assert_eq!(t.distance(2, 2), 0);
        assert_eq!(t.neighbors(2), vec![1, 3]);
        assert_eq!(t.neighbors(0), vec![1]);
    }

    #[test]
    fn full_topology_all_adjacent() {
        let t = Topology::full(4);
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    assert!(t.cx_allowed(a, b));
                    assert_eq!(t.distance(a, b), 1);
                }
            }
        }
    }

    #[test]
    fn undirected_edges_deduplicate() {
        let t = Topology::new(3, vec![(0, 1), (1, 0), (1, 2)]);
        assert_eq!(t.undirected_edges(), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn edge_distance_classes() {
        let t = Topology::linear(6);
        // Sharing a qubit → 0.
        assert_eq!(t.edge_distance((0, 1), (1, 2)), 0);
        // Adjacent edges → 1.
        assert_eq!(t.edge_distance((0, 1), (2, 3)), 1);
        // Far apart.
        assert_eq!(t.edge_distance((0, 1), (4, 5)), 3);
        // Same edge → 0.
        assert_eq!(t.edge_distance((2, 3), (2, 3)), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_panics() {
        let _ = Topology::new(2, vec![(0, 5)]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let _ = Topology::new(2, vec![(1, 1)]);
    }

    #[test]
    fn disconnected_distance_is_max() {
        let t = Topology::new(4, vec![(0, 1), (2, 3)]);
        assert_eq!(t.distance(0, 3), usize::MAX);
    }
}
