//! Device control model for quantum optimal control.
//!
//! The paper verifies AccQOC "with a model of a two-level spin Qubit
//! (ω/2π: 3.9 GHz)" (§IV-D). In the rotating frame of the qubit the bare
//! splitting drops out, leaving per-qubit `σx`/`σy` drive channels and an
//! always-on exchange coupling between neighbors — the standard
//! controllable spin-chain model. All frequencies are angular (rad/ns),
//! so a drive of amplitude `Ω` rotates the Bloch vector by `Ω·t` radians
//! in `t` nanoseconds.

use accqoc_circuit::embed_unitary;
use accqoc_linalg::{Mat, C64, ZERO};

/// Bare qubit frequency, GHz (enters only through the rotating-frame
/// derivation; kept for documentation parity with the paper).
pub const QUBIT_FREQ_GHZ: f64 = 3.9;
/// Maximum drive amplitude, GHz (Ω_max/2π). A π-rotation at full drive
/// takes `1/(2·Ω_max) = 10 ns`.
pub const MAX_DRIVE_GHZ: f64 = 0.05;
/// Exchange coupling between neighboring qubits, GHz (J/2π).
pub const COUPLING_GHZ: f64 = 0.02;
/// Default GRAPE time slice, nanoseconds.
pub const DEFAULT_DT_NS: f64 = 1.0;

const TWO_PI: f64 = std::f64::consts::TAU;

/// One controllable Hamiltonian term with an amplitude bound.
#[derive(Debug, Clone)]
pub struct ControlChannel {
    /// Human-readable channel name, e.g. `"x0"`.
    pub label: String,
    /// The Hamiltonian this channel scales (rad/ns at unit amplitude,
    /// embedded in the full system dimension).
    pub hamiltonian: Mat,
    /// Maximum |amplitude| (dimensionless multiplier of `hamiltonian`).
    pub max_amp: f64,
}

/// A controllable quantum system: drift + bounded control channels +
/// a time-slice width. This is everything GRAPE needs to know about the
/// hardware.
///
/// # Examples
///
/// ```
/// use accqoc_hw::ControlModel;
///
/// let m = ControlModel::spin_chain(2);
/// assert_eq!(m.dim(), 4);
/// assert_eq!(m.n_controls(), 4); // x,y per qubit
/// assert!(m.drift().is_hermitian(1e-12));
/// ```
#[derive(Debug, Clone)]
pub struct ControlModel {
    n_qubits: usize,
    drift: Mat,
    channels: Vec<ControlChannel>,
    dt_ns: f64,
}

impl ControlModel {
    /// Builds a model from explicit parts.
    ///
    /// # Panics
    ///
    /// Panics if the drift or any channel Hamiltonian is not
    /// `2^n_qubits`-dimensional Hermitian, or if `dt_ns <= 0`.
    pub fn new(n_qubits: usize, drift: Mat, channels: Vec<ControlChannel>, dt_ns: f64) -> Self {
        let dim = 1usize << n_qubits;
        assert!(dt_ns > 0.0, "dt must be positive");
        assert_eq!(drift.rows(), dim, "drift dimension");
        assert!(drift.is_hermitian(1e-9), "drift must be hermitian");
        for ch in &channels {
            assert_eq!(ch.hamiltonian.rows(), dim, "channel {} dimension", ch.label);
            assert!(
                ch.hamiltonian.is_hermitian(1e-9),
                "channel {} must be hermitian",
                ch.label
            );
            assert!(ch.max_amp > 0.0, "channel {} amplitude bound", ch.label);
        }
        Self {
            n_qubits,
            drift,
            channels,
            dt_ns,
        }
    }

    /// The standard spin-chain model on `n_qubits` qubits: zero local
    /// drift (rotating frame), nearest-neighbor `J/2·(XX + YY)` coupling,
    /// and `σx`/`σy` drives per qubit.
    ///
    /// # Panics
    ///
    /// Panics for `n_qubits == 0` or `n_qubits > 6` (GRAPE beyond a
    /// handful of qubits is exactly the cost the paper avoids).
    pub fn spin_chain(n_qubits: usize) -> Self {
        assert!(
            (1..=6).contains(&n_qubits),
            "spin chain supports 1..=6 qubits"
        );
        let dim = 1usize << n_qubits;
        let x = Mat::from_reals(&[0.0, 1.0, 1.0, 0.0]);
        let y = Mat::from_flat(&[ZERO, C64::imag(-1.0), C64::imag(1.0), ZERO]);

        let j = TWO_PI * COUPLING_GHZ;
        let mut drift = Mat::zeros(dim, dim);
        for q in 0..n_qubits.saturating_sub(1) {
            let xx = embed_unitary(&x.kron(&x), &[q, q + 1], n_qubits);
            let yy = embed_unitary(&y.kron(&y), &[q, q + 1], n_qubits);
            drift.axpy(C64::real(j / 2.0), &xx);
            drift.axpy(C64::real(j / 2.0), &yy);
        }

        let omega = TWO_PI * MAX_DRIVE_GHZ;
        let mut channels = Vec::with_capacity(2 * n_qubits);
        for q in 0..n_qubits {
            channels.push(ControlChannel {
                label: format!("x{q}"),
                hamiltonian: embed_unitary(&x, &[q], n_qubits).scale_re(omega / 2.0),
                max_amp: 1.0,
            });
            channels.push(ControlChannel {
                label: format!("y{q}"),
                hamiltonian: embed_unitary(&y, &[q], n_qubits).scale_re(omega / 2.0),
                max_amp: 1.0,
            });
        }
        Self::new(n_qubits, drift, channels, DEFAULT_DT_NS)
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Hilbert-space dimension `2^n`.
    pub fn dim(&self) -> usize {
        1 << self.n_qubits
    }

    /// Drift Hamiltonian (rad/ns).
    pub fn drift(&self) -> &Mat {
        &self.drift
    }

    /// Control channels.
    pub fn channels(&self) -> &[ControlChannel] {
        &self.channels
    }

    /// Number of control channels.
    pub fn n_controls(&self) -> usize {
        self.channels.len()
    }

    /// GRAPE time slice, nanoseconds.
    pub fn dt_ns(&self) -> f64 {
        self.dt_ns
    }

    /// Returns a copy with a different time slice.
    ///
    /// # Panics
    ///
    /// Panics if `dt_ns <= 0`.
    pub fn with_dt(mut self, dt_ns: f64) -> Self {
        assert!(dt_ns > 0.0, "dt must be positive");
        self.dt_ns = dt_ns;
        self
    }

    /// Total Hamiltonian at the given control amplitudes:
    /// `H = H₀ + Σⱼ uⱼ·Hⱼ`.
    ///
    /// # Panics
    ///
    /// Panics if `amps.len() != n_controls()`.
    pub fn hamiltonian(&self, amps: &[f64]) -> Mat {
        assert_eq!(amps.len(), self.channels.len(), "amplitude count");
        let mut h = self.drift.clone();
        for (a, ch) in amps.iter().zip(&self.channels) {
            h.axpy(C64::real(*a), &ch.hamiltonian);
        }
        h
    }

    /// Total Hamiltonian written into `out` (storage reused — the GRAPE
    /// hot loop rebuilds `H` once per slice per objective evaluation).
    ///
    /// # Panics
    ///
    /// Panics if `amps.len() != n_controls()`.
    pub fn hamiltonian_into(&self, amps: &[f64], out: &mut Mat) {
        assert_eq!(amps.len(), self.channels.len(), "amplitude count");
        out.copy_from(&self.drift);
        for (a, ch) in amps.iter().zip(&self.channels) {
            out.axpy(C64::real(*a), &ch.hamiltonian);
        }
    }

    /// Clamps an amplitude vector to the per-channel bounds, in place.
    pub fn clamp(&self, amps: &mut [f64]) {
        for (a, ch) in amps.iter_mut().zip(&self.channels) {
            *a = a.clamp(-ch.max_amp, ch.max_amp);
        }
    }

    /// A conservative lower bound on the time (ns) to realize an arbitrary
    /// unitary, used to seed the latency binary search: one π-rotation at
    /// full drive per qubit (`1/(2·Ω_max)`), plus one coupling period
    /// (`1/(4·J)`) when more than one qubit is involved.
    pub fn min_time_estimate_ns(&self) -> f64 {
        let single = 1.0 / (2.0 * MAX_DRIVE_GHZ);
        if self.n_qubits > 1 {
            single + 1.0 / (4.0 * COUPLING_GHZ)
        } else {
            single
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_chain_dimensions() {
        for n in 1..=3 {
            let m = ControlModel::spin_chain(n);
            assert_eq!(m.dim(), 1 << n);
            assert_eq!(m.n_controls(), 2 * n);
            assert!(m.drift().is_hermitian(1e-12));
            for ch in m.channels() {
                assert!(ch.hamiltonian.is_hermitian(1e-12), "{}", ch.label);
            }
        }
    }

    #[test]
    fn single_qubit_has_zero_drift() {
        let m = ControlModel::spin_chain(1);
        assert!(m.drift().approx_eq(&Mat::zeros(2, 2), 1e-15));
    }

    #[test]
    fn two_qubit_drift_is_exchange_coupling() {
        let m = ControlModel::spin_chain(2);
        // XX+YY in the 2-qubit basis: off-diagonal |01⟩↔|10⟩ block of 2·(J/2).
        let j = TWO_PI * COUPLING_GHZ;
        assert!((m.drift()[(1, 2)].re - j).abs() < 1e-12);
        assert!((m.drift()[(2, 1)].re - j).abs() < 1e-12);
        assert!(m.drift()[(0, 0)].abs() < 1e-12);
        assert!(m.drift()[(3, 3)].abs() < 1e-12);
    }

    #[test]
    fn hamiltonian_assembly() {
        let m = ControlModel::spin_chain(1);
        let h = m.hamiltonian(&[1.0, 0.0]);
        // x-channel at unit amplitude: (Ω/2)·X.
        let omega = TWO_PI * MAX_DRIVE_GHZ;
        assert!((h[(0, 1)].re - omega / 2.0).abs() < 1e-12);
        let h0 = m.hamiltonian(&[0.0, 0.0]);
        assert!(h0.approx_eq(m.drift(), 1e-15));
    }

    #[test]
    fn clamp_respects_bounds() {
        let m = ControlModel::spin_chain(1);
        let mut amps = vec![3.0, -2.5];
        m.clamp(&mut amps);
        assert_eq!(amps, vec![1.0, -1.0]);
    }

    #[test]
    fn min_time_estimates_scale_with_arity() {
        let one = ControlModel::spin_chain(1).min_time_estimate_ns();
        let two = ControlModel::spin_chain(2).min_time_estimate_ns();
        assert!((one - 10.0).abs() < 1e-12); // 1/(2·0.05 GHz) = 10 ns
        assert!(two > one);
    }

    #[test]
    #[should_panic(expected = "amplitude count")]
    fn wrong_amp_count_panics() {
        let m = ControlModel::spin_chain(1);
        let _ = m.hamiltonian(&[0.0]);
    }

    #[test]
    #[should_panic(expected = "1..=6")]
    fn oversized_chain_rejected() {
        let _ = ControlModel::spin_chain(7);
    }

    #[test]
    fn with_dt_overrides() {
        let m = ControlModel::spin_chain(1).with_dt(0.25);
        assert_eq!(m.dt_ns(), 0.25);
    }
}
