//! Gate-based pulse durations.
//!
//! Gate-based compilation concatenates one pre-calibrated pulse per gate
//! (paper Figure 3); its program latency is therefore a weighted critical
//! path over per-gate durations. Two tables are provided:
//!
//! - [`GateDurations::ibm_melbourne`] — the published calibration numbers
//!   the paper quotes (CX ≈ 974.9 ns), used for the fidelity/crosstalk
//!   analyses of §II-E and Figure 5.
//! - [`GateDurations::from_single_gate_pulses`] — durations derived from
//!   GRAPE-minimal single-gate pulses on the simulated device, used for
//!   the latency-reduction experiments so that the gate-based baseline
//!   and the QOC groups live on the *same* hardware model.

use std::collections::BTreeMap;

use accqoc_circuit::{Gate, GateKind};

/// Per-kind gate durations in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct GateDurations {
    table: BTreeMap<GateKind, f64>,
    /// Fallback for kinds missing from the table.
    default_ns: f64,
}

impl GateDurations {
    /// Builds a table from explicit entries with a fallback duration.
    pub fn new(entries: impl IntoIterator<Item = (GateKind, f64)>, default_ns: f64) -> Self {
        Self {
            table: entries.into_iter().collect(),
            default_ns,
        }
    }

    /// IBM Q Melbourne-era calibration values (ns). CX duration is the
    /// 974.9 ns the paper quotes (§II-E); single-qubit physical pulses are
    /// ~100 ns (u3 = two half-DRAG pulses), u2 half that, and frame-change
    /// gates (`rz`, `u1`, `z`, `s`, `t`, …) are ~0-cost virtual rotations.
    pub fn ibm_melbourne() -> Self {
        use GateKind::*;
        let one_pulse = 100.0;
        let half_pulse = 50.0;
        let frame = 0.0;
        let cx = 974.9;
        Self::new(
            [
                (X, one_pulse),
                (Y, one_pulse),
                (Z, frame),
                (H, half_pulse),
                (S, frame),
                (Sdg, frame),
                (T, frame),
                (Tdg, frame),
                (Rx, one_pulse),
                (Ry, one_pulse),
                (Rz, frame),
                (U1, frame),
                (U2, half_pulse),
                (U3, one_pulse),
                (Cx, cx),
                (Cz, cx),
                (Swap, 3.0 * cx),
                (Ccx, 15.0 * 150.0), // decomposed footprint; prefer explicit decomposition
            ],
            one_pulse,
        )
    }

    /// Builds the table from measured minimal pulse latencies of single
    /// gates (ns), e.g. GRAPE binary-search results on the simulated
    /// device. Kinds not present fall back to `default_ns`.
    pub fn from_single_gate_pulses(map: BTreeMap<GateKind, f64>, default_ns: f64) -> Self {
        Self {
            table: map,
            default_ns,
        }
    }

    /// Duration of a gate kind in nanoseconds.
    pub fn duration(&self, kind: GateKind) -> f64 {
        self.table.get(&kind).copied().unwrap_or(self.default_ns)
    }

    /// Duration of a concrete gate.
    pub fn gate_duration(&self, gate: &Gate) -> f64 {
        self.duration(gate.kind())
    }

    /// Overrides one entry (builder-style).
    pub fn with(mut self, kind: GateKind, ns: f64) -> Self {
        self.table.insert(kind, ns);
        self
    }

    /// All explicit entries.
    pub fn entries(&self) -> impl Iterator<Item = (GateKind, f64)> + '_ {
        self.table.iter().map(|(&k, &v)| (k, v))
    }
}

impl Default for GateDurations {
    fn default() -> Self {
        Self::ibm_melbourne()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn melbourne_cx_matches_paper() {
        let d = GateDurations::ibm_melbourne();
        assert!((d.duration(GateKind::Cx) - 974.9).abs() < 1e-9);
        assert_eq!(d.duration(GateKind::T), 0.0);
        assert_eq!(d.duration(GateKind::U3), 100.0);
    }

    #[test]
    fn gate_duration_dispatches_on_kind() {
        let d = GateDurations::ibm_melbourne();
        assert_eq!(d.gate_duration(&Gate::Cx(3, 4)), d.duration(GateKind::Cx));
        assert_eq!(d.gate_duration(&Gate::Rz(0, 1.0)), 0.0);
    }

    #[test]
    fn fallback_and_override() {
        let d = GateDurations::new([(GateKind::X, 42.0)], 7.0);
        assert_eq!(d.duration(GateKind::X), 42.0);
        assert_eq!(d.duration(GateKind::H), 7.0);
        let d = d.with(GateKind::H, 9.0);
        assert_eq!(d.duration(GateKind::H), 9.0);
    }

    #[test]
    fn from_pulse_table() {
        let mut m = BTreeMap::new();
        m.insert(GateKind::Cx, 25.0);
        let d = GateDurations::from_single_gate_pulses(m, 10.0);
        assert_eq!(d.duration(GateKind::Cx), 25.0);
        assert_eq!(d.duration(GateKind::X), 10.0);
        assert_eq!(d.entries().count(), 1);
    }
}
