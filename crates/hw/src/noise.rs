//! Device noise model: gate error, decoherence, and CNOT crosstalk.
//!
//! Reproduces the quantities of paper §II-E and Figure 5:
//!
//! - decoherence error over a latency `t`: `1 − e^{−t/T1}` with the
//!   Melbourne `T1 = 57.35 µs`, `T2 = 61.82 µs`;
//! - per-pair CX error around the published 2.46×10⁻² average;
//! - a ~20% error-rate inflation when another CNOT runs in parallel on a
//!   nearby pair (Figure 5 shows six pairs suffering an average 20%
//!   increase).
//!
//! The per-pair base errors are synthesized deterministically (the paper's
//! per-pair calibration data is not published); the *relationships* —
//! averages, ratios, distance dependence — are the paper's.

use crate::topology::Topology;

/// Average relaxation time of Melbourne qubits, microseconds (paper §II-E).
pub const T1_US: f64 = 57.35;
/// Average coherence time of Melbourne qubits, microseconds (paper §II-E).
pub const T2_US: f64 = 61.82;
/// Average CX gate error on Melbourne (paper §II-E).
pub const CX_ERROR_AVG: f64 = 2.46e-2;
/// Average crosstalk inflation factor for close parallel CNOTs
/// (paper §IV-A reports ≈20% higher error).
pub const CROSSTALK_FACTOR: f64 = 1.20;

/// Error/crosstalk model bound to a topology.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    topology: Topology,
    /// Base CX error per undirected edge, aligned with
    /// `topology.undirected_edges()`.
    cx_errors: Vec<f64>,
    /// Crosstalk inflation applied when a CNOT at edge distance ≤ 1 runs
    /// in parallel.
    crosstalk_factor: f64,
}

impl NoiseModel {
    /// Builds the Melbourne noise model with deterministic per-pair
    /// variation (±30% around the published average, seeded by pair
    /// index).
    pub fn melbourne() -> Self {
        Self::synthetic(Topology::melbourne(), CX_ERROR_AVG, CROSSTALK_FACTOR)
    }

    /// Builds a synthetic model for any topology: per-edge base errors are
    /// spread deterministically around `avg_cx_error`.
    pub fn synthetic(topology: Topology, avg_cx_error: f64, crosstalk_factor: f64) -> Self {
        let edges = topology.undirected_edges();
        let n = edges.len().max(1);
        let cx_errors = edges
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| {
                // Deterministic ±30% spread from a small hash of the pair.
                let h = (a * 2_654_435_761 + b * 40_503 + i) % 1000;
                let spread = (h as f64 / 999.0) * 0.6 - 0.3;
                avg_cx_error * (1.0 + spread)
            })
            .collect::<Vec<_>>();
        // Re-center so the mean matches the published average exactly.
        let mean: f64 = cx_errors.iter().sum::<f64>() / n as f64;
        let cx_errors = cx_errors
            .into_iter()
            .map(|e| e * avg_cx_error / mean)
            .collect();
        Self {
            topology,
            cx_errors,
            crosstalk_factor,
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Decoherence error accumulated over `latency_ns`:
    /// `1 − e^{−t/T1}` (paper §II-E computes 1.69×10⁻² for one CX).
    pub fn decoherence_error(&self, latency_ns: f64) -> f64 {
        1.0 - (-latency_ns / (T1_US * 1000.0)).exp()
    }

    /// Base CX error of an undirected pair.
    ///
    /// # Panics
    ///
    /// Panics if `(a, b)` is not an edge of the topology.
    pub fn cx_error(&self, a: usize, b: usize) -> f64 {
        let key = if a < b { (a, b) } else { (b, a) };
        let idx = self
            .topology
            .undirected_edges()
            .iter()
            .position(|&e| e == key)
            .unwrap_or_else(|| panic!("({a},{b}) is not an edge"));
        self.cx_errors[idx]
    }

    /// CX error of pair `(a, b)` while another CNOT runs on `other`:
    /// inflated by the crosstalk factor when the pairs are at edge
    /// distance ≤ 1, unchanged otherwise.
    pub fn cx_error_with_parallel(&self, a: usize, b: usize, other: (usize, usize)) -> f64 {
        let base = self.cx_error(a, b);
        if self.topology.edge_distance((a, b), other) <= 1 {
            (base * self.crosstalk_factor).min(1.0)
        } else {
            base
        }
    }

    /// Crosstalk inflation factor used by this model.
    pub fn crosstalk_factor(&self) -> f64 {
        self.crosstalk_factor
    }

    /// Estimated success probability of a program: product of per-gate
    /// survival (1 − error) and the decoherence survival over the total
    /// latency. Single-qubit gates are charged one tenth of the CX
    /// average, matching the order-of-magnitude gap in IBM calibrations.
    pub fn program_fidelity(&self, n_cx: usize, n_single: usize, latency_ns: f64) -> f64 {
        let avg_cx: f64 = if self.cx_errors.is_empty() {
            CX_ERROR_AVG
        } else {
            self.cx_errors.iter().sum::<f64>() / self.cx_errors.len() as f64
        };
        let single_err = avg_cx / 10.0;
        let gate_survival =
            (1.0 - avg_cx).powi(n_cx as i32) * (1.0 - single_err).powi(n_single as i32);
        let coherence_survival = 1.0 - self.decoherence_error(latency_ns);
        gate_survival * coherence_survival
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoherence_matches_paper_example() {
        // Paper: 974.9 ns of idling costs 1 − e^{−0.9749/57.35} = 1.69e-2.
        let m = NoiseModel::melbourne();
        let err = m.decoherence_error(974.9);
        assert!((err - 1.69e-2).abs() < 1e-4, "got {err}");
    }

    #[test]
    fn cx_errors_average_to_published_value() {
        let m = NoiseModel::melbourne();
        let edges = m.topology().undirected_edges();
        let mean: f64 =
            edges.iter().map(|&(a, b)| m.cx_error(a, b)).sum::<f64>() / edges.len() as f64;
        assert!((mean - CX_ERROR_AVG).abs() < 1e-12);
        // Per-pair variation exists.
        let first = m.cx_error(edges[0].0, edges[0].1);
        assert!(edges
            .iter()
            .any(|&(a, b)| (m.cx_error(a, b) - first).abs() > 1e-4));
    }

    #[test]
    fn crosstalk_inflates_close_pairs_only() {
        let m = NoiseModel::melbourne();
        // (1,0) and (1,2) share qubit 1 → distance 0 → inflated.
        let base = m.cx_error(0, 1);
        let with = m.cx_error_with_parallel(0, 1, (1, 2));
        assert!((with / base - CROSSTALK_FACTOR).abs() < 1e-12);
        // A far pair leaves the error unchanged: (0,1) vs (7,8).
        let far = m.cx_error_with_parallel(0, 1, (7, 8));
        assert!((far - base).abs() < 1e-15);
    }

    #[test]
    fn error_is_capped_at_one() {
        let m = NoiseModel::synthetic(Topology::linear(3), 0.9, 2.0);
        assert!(m.cx_error_with_parallel(0, 1, (1, 2)) <= 1.0);
    }

    #[test]
    fn program_fidelity_decreases_with_size_and_latency() {
        let m = NoiseModel::melbourne();
        let small = m.program_fidelity(5, 10, 5_000.0);
        let bigger = m.program_fidelity(20, 10, 5_000.0);
        let slower = m.program_fidelity(5, 10, 50_000.0);
        assert!(small > bigger);
        assert!(small > slower);
        assert!(small <= 1.0 && bigger > 0.0);
    }

    #[test]
    fn coherence_and_gate_error_are_comparable() {
        // The paper's motivating claim (§II-E): per-CX decoherence error
        // (1.69e-2) is the same order as CX gate error (2.46e-2).
        let m = NoiseModel::melbourne();
        let ratio = m.decoherence_error(974.9) / CX_ERROR_AVG;
        assert!(ratio > 0.5 && ratio < 1.0, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "is not an edge")]
    fn non_edge_rejected() {
        let m = NoiseModel::melbourne();
        let _ = m.cx_error(0, 7);
    }
}
