//! Quantum hardware models for the AccQOC reproduction.
//!
//! Everything the compilation pipeline needs to know about the device:
//!
//! - [`Topology`] — coupling graphs with directed CNOTs, including the
//!   IBM Q Melbourne 14-qubit chip all paper experiments run on.
//! - [`GateDurations`] — per-gate pulse lengths for the gate-based
//!   compilation baseline.
//! - [`NoiseModel`] — CX error rates, decoherence, and the nearby-CNOT
//!   crosstalk inflation of paper Figure 5.
//! - [`ControlModel`] — drift/control Hamiltonians of the two-level spin
//!   qubit model (ω/2π = 3.9 GHz) that GRAPE optimizes over.
//!
//! # Example
//!
//! ```
//! use accqoc_hw::{NoiseModel, Topology};
//!
//! let noise = NoiseModel::melbourne();
//! // A CNOT on (0,1) gets noisier when a neighbor pair fires in parallel.
//! let quiet = noise.cx_error(0, 1);
//! let loud = noise.cx_error_with_parallel(0, 1, (1, 2));
//! assert!(loud > quiet);
//! ```

#![warn(missing_docs)]

mod control;
mod noise;
mod timing;
mod topology;

pub use control::{
    ControlChannel, ControlModel, COUPLING_GHZ, DEFAULT_DT_NS, MAX_DRIVE_GHZ, QUBIT_FREQ_GHZ,
};
pub use noise::{NoiseModel, CROSSTALK_FACTOR, CX_ERROR_AVG, T1_US, T2_US};
pub use timing::GateDurations;
pub use topology::Topology;
