//! Noisy-execution simulator for the AccQOC reproduction.
//!
//! Density-matrix simulation with the decoherence and gate-error channels
//! of the paper's §II-E error budget. Its purpose is to make the paper's
//! central motivation quantitative: reducing program latency through
//! QOC-compiled pulses directly increases end-to-end fidelity on
//! decoherence-limited hardware.
//!
//! # Example
//!
//! ```
//! use accqoc_circuit::{Circuit, Gate};
//! use accqoc_sim::{execute_noisy, ExecutionNoise};
//!
//! let bell = Circuit::from_gates(2, [Gate::H(0), Gate::Cx(0, 1)]);
//! let slow = execute_noisy(&bell, |_| 5000.0, &ExecutionNoise::decoherence_only());
//! let fast = execute_noisy(&bell, |_| 500.0, &ExecutionNoise::decoherence_only());
//! assert!(fast.fidelity > slow.fidelity);
//! ```

#![warn(missing_docs)]

mod density;
mod executor;
mod kraus;

pub use density::{output_state_fidelity, DensityMatrix};
pub use executor::{execute_noisy, latency_fidelity_comparison, ExecutionNoise, ExecutionResult};
pub use kraus::{amplitude_damping, dephasing, depolarizing, embed_kraus, is_trace_preserving};
