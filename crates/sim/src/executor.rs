//! Noisy program execution: the paper's §II-E motivation, made
//! quantitative.
//!
//! Executes a (small) circuit layer by layer on a density matrix,
//! interleaving ideal gate unitaries with decoherence channels whose
//! strength is set by how long each layer takes. Running the *same*
//! program with gate-based latencies versus AccQOC latencies quantifies
//! the fidelity gained purely from latency reduction.

use accqoc_circuit::{apply_gate, Circuit, CircuitDag, Gate};
use accqoc_hw::{T1_US, T2_US};
use accqoc_linalg::Mat;

use crate::density::DensityMatrix;
use crate::kraus::{amplitude_damping, dephasing, depolarizing, embed_kraus};

/// Noise parameters for execution.
#[derive(Debug, Clone)]
pub struct ExecutionNoise {
    /// Relaxation time, microseconds.
    pub t1_us: f64,
    /// Coherence time, microseconds (`T2 ≤ 2·T1`).
    pub t2_us: f64,
    /// Depolarizing error probability applied per two-qubit gate.
    pub two_qubit_error: f64,
    /// Depolarizing error probability applied per single-qubit gate.
    pub single_qubit_error: f64,
}

impl ExecutionNoise {
    /// The paper's Melbourne constants (§II-E): `T1 = 57.35 µs`,
    /// `T2 = 61.82 µs`, CX error `2.46e-2` (single-qubit a tenth of it).
    pub fn melbourne() -> Self {
        Self {
            t1_us: T1_US,
            t2_us: T2_US,
            two_qubit_error: 2.46e-2,
            single_qubit_error: 2.46e-3,
        }
    }

    /// Decoherence-only variant (gate errors zeroed) to isolate the
    /// latency effect.
    pub fn decoherence_only() -> Self {
        Self {
            two_qubit_error: 0.0,
            single_qubit_error: 0.0,
            ..Self::melbourne()
        }
    }

    /// Pure-dephasing rate `1/Tφ = 1/T2 − 1/(2·T1)` (ns⁻¹).
    fn dephasing_rate_per_ns(&self) -> f64 {
        let t1_ns = self.t1_us * 1000.0;
        let t2_ns = self.t2_us * 1000.0;
        (1.0 / t2_ns - 1.0 / (2.0 * t1_ns)).max(0.0)
    }
}

/// Result of a noisy execution.
#[derive(Debug, Clone)]
pub struct ExecutionResult {
    /// The final mixed state.
    pub state: DensityMatrix,
    /// Fidelity with the ideal (noiseless) final state.
    pub fidelity: f64,
    /// Total program latency used, nanoseconds.
    pub latency_ns: f64,
}

/// Executes `circuit` from `|0…0⟩` with per-gate durations given by
/// `gate_latency_ns`, applying decoherence for each ASAP layer's duration
/// (slowest gate in the layer) on every qubit, plus per-gate depolarizing
/// errors.
///
/// # Panics
///
/// Panics if the circuit has more than 6 qubits (density simulation is
/// `4^n`) or contains gates of arity > 2.
pub fn execute_noisy(
    circuit: &Circuit,
    gate_latency_ns: impl Fn(&Gate) -> f64,
    noise: &ExecutionNoise,
) -> ExecutionResult {
    let n = circuit.n_qubits();
    assert!(n <= 6, "density simulation limited to 6 qubits, got {n}");
    let dag = CircuitDag::from_circuit(circuit);

    // Ideal final state for the fidelity reference.
    let dim = 1usize << n;
    let mut ideal = Mat::zeros(dim, 1);
    ideal[(0, 0)] = accqoc_linalg::C64::real(1.0);
    {
        let mut u = Mat::identity(dim);
        for g in circuit.iter() {
            apply_gate(&mut u, g, n);
        }
        ideal = u.matmul(&ideal);
    }

    let mut rho = DensityMatrix::pure_basis(n, 0);
    let mut total_latency = 0.0f64;
    let t1_ns = noise.t1_us * 1000.0;
    let phi_rate = noise.dephasing_rate_per_ns();

    for layer in dag.layers() {
        // Apply the layer's ideal gates + their depolarizing errors.
        let mut layer_duration = 0.0f64;
        for &idx in &layer {
            let gate = &dag.node(idx).gate;
            let embedded = accqoc_circuit::embed_unitary(&gate.matrix(), &gate.qubits(), n);
            rho.apply_unitary(&embedded);
            let p = match gate.arity() {
                2 => noise.two_qubit_error,
                _ => noise.single_qubit_error,
            };
            if p > 0.0 {
                for q in gate.qubits() {
                    rho.apply_kraus(&embed_kraus(&depolarizing(p), q, n));
                }
            }
            layer_duration = layer_duration.max(gate_latency_ns(gate));
        }
        // Decoherence on every qubit for the layer duration.
        if layer_duration > 0.0 {
            let gamma = 1.0 - (-layer_duration / t1_ns).exp();
            let p_phi = 0.5 * (1.0 - (-2.0 * phi_rate * layer_duration).exp());
            for q in 0..n {
                rho.apply_kraus(&embed_kraus(&amplitude_damping(gamma), q, n));
                if p_phi > 0.0 {
                    rho.apply_kraus(&embed_kraus(&dephasing(p_phi), q, n));
                }
            }
        }
        total_latency += layer_duration;
    }

    let fidelity = rho.fidelity_with_pure(&ideal);
    ExecutionResult {
        state: rho,
        fidelity,
        latency_ns: total_latency,
    }
}

/// Executes the program twice — once with gate-based latencies, once with
/// a compressed AccQOC latency budget — and reports both fidelities. The
/// AccQOC run scales every layer duration by
/// `accqoc_latency / gate_based_latency`, modelling the whole program
/// running `latency_reduction×` faster on the same noise floor.
pub fn latency_fidelity_comparison(
    circuit: &Circuit,
    gate_latency_ns: impl Fn(&Gate) -> f64 + Copy,
    accqoc_latency_ns: f64,
    noise: &ExecutionNoise,
) -> (ExecutionResult, ExecutionResult) {
    let gate_based = execute_noisy(circuit, gate_latency_ns, noise);
    let scale = if gate_based.latency_ns > 0.0 {
        accqoc_latency_ns / gate_based.latency_ns
    } else {
        1.0
    };
    let accqoc = execute_noisy(circuit, |g| gate_latency_ns(g) * scale, noise);
    (gate_based, accqoc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use accqoc_hw::GateDurations;

    fn durations() -> impl Fn(&Gate) -> f64 + Copy {
        |g: &Gate| GateDurations::ibm_melbourne().gate_duration(g)
    }

    #[test]
    fn noiseless_execution_is_exact() {
        let c = Circuit::from_gates(2, [Gate::H(0), Gate::Cx(0, 1)]);
        let noise = ExecutionNoise {
            t1_us: f64::INFINITY,
            t2_us: f64::INFINITY,
            two_qubit_error: 0.0,
            single_qubit_error: 0.0,
        };
        let r = execute_noisy(&c, durations(), &noise);
        assert!((r.fidelity - 1.0).abs() < 1e-9, "fidelity {}", r.fidelity);
    }

    #[test]
    fn decoherence_reduces_fidelity_with_latency() {
        let c = Circuit::from_gates(2, [Gate::H(0), Gate::Cx(0, 1), Gate::Cx(0, 1), Gate::H(0)]);
        let noise = ExecutionNoise::decoherence_only();
        let slow = execute_noisy(&c, |_| 5000.0, &noise);
        let fast = execute_noisy(&c, |_| 500.0, &noise);
        assert!(
            fast.fidelity > slow.fidelity,
            "{} vs {}",
            fast.fidelity,
            slow.fidelity
        );
        assert!(slow.fidelity < 1.0);
        assert!((slow.state.trace() - 1.0).abs() < 1e-9, "trace preserved");
    }

    #[test]
    fn gate_errors_accumulate_per_gate() {
        let mut gates = Vec::new();
        for _ in 0..5 {
            gates.push(Gate::Cx(0, 1));
            gates.push(Gate::Cx(0, 1));
        }
        let c_long = Circuit::from_gates(2, gates.clone());
        let c_short = Circuit::from_gates(2, gates[..2].to_vec());
        let noise = ExecutionNoise {
            t1_us: f64::INFINITY,
            t2_us: f64::INFINITY,
            ..ExecutionNoise::melbourne()
        };
        let long = execute_noisy(&c_long, |_| 0.0, &noise);
        let short = execute_noisy(&c_short, |_| 0.0, &noise);
        assert!(long.fidelity < short.fidelity);
    }

    #[test]
    fn latency_comparison_shows_accqoc_gain() {
        // The §II-E story: same program, 2.4× lower latency ⇒ higher
        // fidelity from coherence alone.
        let c = Circuit::from_gates(
            3,
            [
                Gate::H(0),
                Gate::Cx(0, 1),
                Gate::T(1),
                Gate::Cx(1, 2),
                Gate::Cx(0, 1),
                Gate::H(2),
            ],
        );
        let noise = ExecutionNoise::decoherence_only();
        let gate_based = execute_noisy(&c, durations(), &noise);
        let accqoc_latency = gate_based.latency_ns / 2.43;
        let (gb, acc) = latency_fidelity_comparison(&c, durations(), accqoc_latency, &noise);
        assert!((gb.latency_ns - gate_based.latency_ns).abs() < 1e-9);
        assert!((acc.latency_ns - accqoc_latency).abs() < 1.0);
        assert!(
            acc.fidelity > gb.fidelity,
            "accqoc {} vs gate {}",
            acc.fidelity,
            gb.fidelity
        );
    }

    #[test]
    #[should_panic(expected = "limited to 6 qubits")]
    fn wide_circuit_rejected() {
        let c = Circuit::new(7);
        let _ = execute_noisy(&c, |_| 1.0, &ExecutionNoise::melbourne());
    }
}
