//! Standard noise channels as Kraus operators.
//!
//! The channels the paper's error budget is built from (§II-E):
//! amplitude damping (`T1` relaxation), pure dephasing (`T2`), and
//! depolarizing gate error. Single-qubit channels embed into an n-qubit
//! register via [`embed_kraus`].

use accqoc_circuit::embed_unitary;
use accqoc_linalg::{Mat, C64, ZERO};

/// Amplitude-damping channel with decay probability
/// `γ = 1 − e^{−t/T1}`: Kraus operators
/// `K₀ = diag(1, √(1−γ))`, `K₁ = √γ·|0⟩⟨1|`.
///
/// # Panics
///
/// Panics unless `0 ≤ γ ≤ 1`.
pub fn amplitude_damping(gamma: f64) -> Vec<Mat> {
    assert!((0.0..=1.0).contains(&gamma), "gamma must be a probability");
    let k0 = Mat::from_flat(&[C64::real(1.0), ZERO, ZERO, C64::real((1.0 - gamma).sqrt())]);
    let k1 = Mat::from_flat(&[ZERO, C64::real(gamma.sqrt()), ZERO, ZERO]);
    vec![k0, k1]
}

/// Pure-dephasing channel with phase-flip probability `p`:
/// `K₀ = √(1−p)·I`, `K₁ = √p·Z`.
///
/// # Panics
///
/// Panics unless `0 ≤ p ≤ 1`.
pub fn dephasing(p: f64) -> Vec<Mat> {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let z = Mat::from_reals(&[1.0, 0.0, 0.0, -1.0]);
    vec![
        Mat::identity(2).scale_re((1.0 - p).sqrt()),
        z.scale_re(p.sqrt()),
    ]
}

/// Single-qubit depolarizing channel with error probability `p`:
/// identity with probability `1−p`, otherwise a uniform Pauli.
///
/// # Panics
///
/// Panics unless `0 ≤ p ≤ 1`.
pub fn depolarizing(p: f64) -> Vec<Mat> {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let x = Mat::from_reals(&[0.0, 1.0, 1.0, 0.0]);
    let y = Mat::from_flat(&[ZERO, C64::imag(-1.0), C64::imag(1.0), ZERO]);
    let z = Mat::from_reals(&[1.0, 0.0, 0.0, -1.0]);
    vec![
        Mat::identity(2).scale_re((1.0 - p).sqrt()),
        x.scale_re((p / 3.0).sqrt()),
        y.scale_re((p / 3.0).sqrt()),
        z.scale_re((p / 3.0).sqrt()),
    ]
}

/// Embeds single-qubit Kraus operators onto qubit `q` of an `n`-qubit
/// register (identity elsewhere).
///
/// # Panics
///
/// Panics if an operator is not `2×2` or `q >= n_qubits`.
pub fn embed_kraus(kraus: &[Mat], qubit: usize, n_qubits: usize) -> Vec<Mat> {
    kraus
        .iter()
        .map(|k| {
            assert_eq!(k.rows(), 2, "single-qubit kraus expected");
            embed_unitary(k, &[qubit], n_qubits)
        })
        .collect()
}

/// Checks the completeness relation `Σ K†K = I` (trace preservation).
pub fn is_trace_preserving(kraus: &[Mat], tol: f64) -> bool {
    if kraus.is_empty() {
        return false;
    }
    let dim = kraus[0].rows();
    let mut sum = Mat::zeros(dim, dim);
    for k in kraus {
        sum += &k.dagger_matmul(k);
    }
    sum.approx_eq(&Mat::identity(dim), tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::DensityMatrix;

    #[test]
    fn all_channels_are_trace_preserving() {
        for gamma in [0.0, 0.1, 0.5, 1.0] {
            assert!(
                is_trace_preserving(&amplitude_damping(gamma), 1e-12),
                "ad({gamma})"
            );
            assert!(
                is_trace_preserving(&dephasing(gamma), 1e-12),
                "deph({gamma})"
            );
            assert!(
                is_trace_preserving(&depolarizing(gamma), 1e-12),
                "depol({gamma})"
            );
        }
    }

    #[test]
    fn embedded_channels_are_trace_preserving() {
        let k = embed_kraus(&amplitude_damping(0.3), 1, 3);
        assert!(is_trace_preserving(&k, 1e-12));
        assert_eq!(k[0].rows(), 8);
    }

    #[test]
    fn amplitude_damping_decays_excited_state() {
        let mut rho = DensityMatrix::pure_basis(1, 1); // |1⟩
        rho.apply_kraus(&amplitude_damping(0.25));
        assert!((rho.population(1) - 0.75).abs() < 1e-12);
        assert!((rho.population(0) - 0.25).abs() < 1e-12);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        // Ground state is a fixed point.
        let mut ground = DensityMatrix::pure_basis(1, 0);
        ground.apply_kraus(&amplitude_damping(0.25));
        assert!((ground.population(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dephasing_kills_coherences_not_populations() {
        use accqoc_circuit::Gate;
        let mut rho = DensityMatrix::pure_basis(1, 0);
        rho.apply_unitary(&Gate::H(0).matrix()); // |+⟩: coherences 1/2
        rho.apply_kraus(&dephasing(0.5)); // full dephasing at p = 1/2
        assert!((rho.population(0) - 0.5).abs() < 1e-12);
        assert!(
            rho.as_mat()[(0, 1)].abs() < 1e-12,
            "coherence should vanish"
        );
        assert!((rho.purity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn depolarizing_drives_toward_maximally_mixed() {
        let mut rho = DensityMatrix::pure_basis(1, 0);
        // Full depolarizing (p = 3/4 is the fixed-point boundary for this
        // parameterization: output = I/2).
        rho.apply_kraus(&depolarizing(0.75));
        assert!((rho.population(0) - 0.5).abs() < 1e-12);
        assert!((rho.purity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn embedded_damping_targets_the_right_qubit() {
        // Excite both qubits; damp only qubit 1 (LSB).
        let mut rho = DensityMatrix::pure_basis(2, 3); // |11⟩
        rho.apply_kraus(&embed_kraus(&amplitude_damping(1.0), 1, 2));
        // Qubit 1 fully decayed: |10⟩ = index 2.
        assert!((rho.population(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_rejected() {
        let _ = depolarizing(1.5);
    }
}
