//! Density matrices.
//!
//! Open-system simulation needs mixed states: decoherence turns pure
//! states into mixtures that no state vector can represent. A density
//! matrix `ρ` is Hermitian, positive semidefinite, and has unit trace.

use accqoc_linalg::{eigh, LinalgError, Mat, C64};

/// A density matrix over `n` qubits (`2^n × 2^n`).
///
/// # Examples
///
/// ```
/// use accqoc_sim::DensityMatrix;
///
/// let rho = DensityMatrix::pure_basis(2, 0); // |00⟩⟨00|
/// assert!((rho.purity() - 1.0).abs() < 1e-12);
/// assert!((rho.trace() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    mat: Mat,
    n_qubits: usize,
}

impl DensityMatrix {
    /// Builds `|ψ⟩⟨ψ|` from a unit-norm state vector (column `2^n × 1`).
    ///
    /// # Panics
    ///
    /// Panics if the vector is not a unit-norm column of power-of-two
    /// length.
    pub fn from_pure(state: &Mat) -> Self {
        assert_eq!(state.cols(), 1, "state must be a column vector");
        let dim = state.rows();
        let n_qubits = dim.trailing_zeros() as usize;
        assert_eq!(1 << n_qubits, dim, "dimension must be a power of two");
        assert!(
            (state.frobenius_norm() - 1.0).abs() < 1e-9,
            "state must be unit norm"
        );
        let mat = state.matmul(&state.dagger());
        Self { mat, n_qubits }
    }

    /// The computational basis state `|idx⟩⟨idx|` over `n_qubits`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 2^n_qubits`.
    pub fn pure_basis(n_qubits: usize, idx: usize) -> Self {
        let dim = 1usize << n_qubits;
        assert!(idx < dim, "basis index out of range");
        let mut m = Mat::zeros(dim, dim);
        m[(idx, idx)] = C64::real(1.0);
        Self { mat: m, n_qubits }
    }

    /// The maximally mixed state `I/2^n`.
    pub fn maximally_mixed(n_qubits: usize) -> Self {
        let dim = 1usize << n_qubits;
        Self {
            mat: Mat::identity(dim).scale_re(1.0 / dim as f64),
            n_qubits,
        }
    }

    /// Wraps a raw matrix (validated: Hermitian, unit trace).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotHermitian`] / [`LinalgError::NotPsd`] on
    /// invalid input.
    pub fn from_mat(mat: Mat) -> Result<Self, LinalgError> {
        if !mat.is_hermitian(1e-8) {
            return Err(LinalgError::NotHermitian);
        }
        let eig = eigh(&mat)?;
        if let Some(&min) = eig.values.first() {
            if min < -1e-8 {
                return Err(LinalgError::NotPsd { eigenvalue: min });
            }
        }
        let n_qubits = mat.rows().trailing_zeros() as usize;
        Ok(Self { mat, n_qubits })
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Hilbert dimension `2^n`.
    pub fn dim(&self) -> usize {
        self.mat.rows()
    }

    /// The raw matrix.
    pub fn as_mat(&self) -> &Mat {
        &self.mat
    }

    /// `Tr ρ` (should stay 1 under trace-preserving evolution).
    pub fn trace(&self) -> f64 {
        self.mat.trace().re
    }

    /// Purity `Tr ρ²` — 1 for pure states, `1/2^n` for maximally mixed.
    pub fn purity(&self) -> f64 {
        self.mat.matmul(&self.mat).trace().re
    }

    /// Unitary conjugation `ρ ← U·ρ·U†`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn apply_unitary(&mut self, u: &Mat) {
        assert_eq!(u.rows(), self.dim(), "unitary dimension");
        self.mat = u.matmul(&self.mat).matmul(&u.dagger());
    }

    /// Applies a channel given by Kraus operators: `ρ ← Σ K ρ K†`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or an empty operator list.
    pub fn apply_kraus(&mut self, kraus: &[Mat]) {
        assert!(!kraus.is_empty(), "need at least one Kraus operator");
        let dim = self.dim();
        let mut out = Mat::zeros(dim, dim);
        for k in kraus {
            assert_eq!(k.rows(), dim, "kraus dimension");
            out += &k.matmul(&self.mat).matmul(&k.dagger());
        }
        self.mat = out;
    }

    /// Fidelity with a pure state: `⟨ψ|ρ|ψ⟩`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn fidelity_with_pure(&self, state: &Mat) -> f64 {
        assert_eq!(state.rows(), self.dim());
        assert_eq!(state.cols(), 1);
        state.dagger().matmul(&self.mat).matmul(state)[(0, 0)]
            .re
            .clamp(0.0, 1.0)
    }

    /// Probability of measuring the computational basis state `idx`.
    pub fn population(&self, idx: usize) -> f64 {
        self.mat[(idx, idx)].re.clamp(0.0, 1.0)
    }
}

/// Fidelity `|⟨ψ_a|ψ_b⟩|²` between the output states two unitaries
/// produce from the same computational basis state `|basis_idx⟩`.
///
/// A state-level spot check that two compilations of the same program act
/// identically on a chosen input — the verification oracle runs it on
/// `|0…0⟩` alongside the process-fidelity comparison. Insensitive to
/// global phase by construction.
///
/// # Panics
///
/// Panics on non-square or mismatched unitaries, or an out-of-range
/// basis index.
///
/// # Examples
///
/// ```
/// use accqoc_linalg::{Mat, C64};
/// use accqoc_sim::output_state_fidelity;
///
/// let x = Mat::from_reals(&[0.0, 1.0, 1.0, 0.0]);
/// let phased = x.scale(C64::cis(0.9));
/// assert!((output_state_fidelity(&x, &phased, 0) - 1.0).abs() < 1e-12);
/// assert!(output_state_fidelity(&x, &Mat::identity(2), 0) < 1e-12);
/// ```
pub fn output_state_fidelity(u_a: &Mat, u_b: &Mat, basis_idx: usize) -> f64 {
    assert!(u_a.is_square() && u_b.is_square(), "unitaries are square");
    assert_eq!(u_a.rows(), u_b.rows(), "dimension mismatch");
    assert!(basis_idx < u_a.rows(), "basis index out of range");
    let column = |u: &Mat| Mat::from_fn(u.rows(), 1, |r, _| u[(r, basis_idx)]);
    DensityMatrix::from_pure(&column(u_b)).fidelity_with_pure(&column(u_a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use accqoc_circuit::Gate;

    #[test]
    fn pure_state_properties() {
        let rho = DensityMatrix::pure_basis(2, 3);
        assert_eq!(rho.n_qubits(), 2);
        assert_eq!(rho.dim(), 4);
        assert!((rho.trace() - 1.0).abs() < 1e-14);
        assert!((rho.purity() - 1.0).abs() < 1e-14);
        assert!((rho.population(3) - 1.0).abs() < 1e-14);
        assert_eq!(rho.population(0), 0.0);
    }

    #[test]
    fn maximally_mixed_properties() {
        let rho = DensityMatrix::maximally_mixed(2);
        assert!((rho.trace() - 1.0).abs() < 1e-14);
        assert!((rho.purity() - 0.25).abs() < 1e-14);
    }

    #[test]
    fn from_pure_matches_basis() {
        let mut v = Mat::zeros(4, 1);
        v[(1, 0)] = C64::real(1.0);
        assert_eq!(
            DensityMatrix::from_pure(&v),
            DensityMatrix::pure_basis(2, 1)
        );
    }

    #[test]
    fn unitary_preserves_trace_and_purity() {
        let mut rho = DensityMatrix::pure_basis(1, 0);
        rho.apply_unitary(&Gate::H(0).matrix());
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
        assert!((rho.population(0) - 0.5).abs() < 1e-12);
        assert!((rho.population(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fidelity_with_pure_state() {
        let mut rho = DensityMatrix::pure_basis(1, 0);
        rho.apply_unitary(&Gate::X(0).matrix());
        let mut one = Mat::zeros(2, 1);
        one[(1, 0)] = C64::real(1.0);
        assert!((rho.fidelity_with_pure(&one) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_mat_validates() {
        assert!(DensityMatrix::from_mat(Mat::identity(2).scale_re(0.5)).is_ok());
        let bad = Mat::from_reals(&[0.0, 1.0, 0.0, 0.0]);
        assert!(DensityMatrix::from_mat(bad).is_err());
    }

    #[test]
    #[should_panic(expected = "unit norm")]
    fn non_normalized_pure_rejected() {
        let v = Mat::from_fn(2, 1, |_, _| C64::real(1.0));
        let _ = DensityMatrix::from_pure(&v);
    }

    #[test]
    fn output_state_fidelity_distinguishes_inputs() {
        use accqoc_circuit::{circuit_unitary, Circuit};
        let bell = circuit_unitary(&Circuit::from_gates(2, [Gate::H(0), Gate::Cx(0, 1)]));
        // Same unitary, same column: perfect overlap on every input.
        for idx in 0..4 {
            assert!((output_state_fidelity(&bell, &bell, idx) - 1.0).abs() < 1e-12);
        }
        // H⊗I sends |00⟩ to (|00⟩+|10⟩)/√2; the Bell output is
        // (|00⟩+|11⟩)/√2, so the overlap is |1/2|² = 1/4.
        let h_only = circuit_unitary(&Circuit::from_gates(2, [Gate::H(0)]));
        assert!((output_state_fidelity(&bell, &h_only, 0) - 0.25).abs() < 1e-12);
    }
}
