//! Durability substrate for the AccQOC pulse library.
//!
//! The live [`PulseLibrary`] amortizes GRAPE compilation across circuits
//! but dies with the process; this crate provides the storage primitives
//! that make the library survive restarts:
//!
//! - [`WalWriter`] / [`replay_wal`] — an append-only write-ahead log of
//!   opaque byte records, each framed with a length prefix and a CRC32
//!   checksum and fsync'd on append. Replay tolerates a truncated tail
//!   (the signature of a crash mid-append) but rejects checksum
//!   corruption of a complete frame with a typed [`StoreError::Corrupt`].
//! - [`write_atomic`] — write-to-temp + atomic rename, shared by the
//!   legacy `save_cache` path and the snapshot path so a crash mid-write
//!   can never leave a torn artifact behind.
//! - [`crc32`] — the IEEE CRC32 used for frame checksums, exposed so
//!   higher layers can checksum sidecar artifacts the same way.
//!
//! The crate is std-only and knows nothing about pulses: records are
//! opaque `Vec<u8>` payloads. The `accqoc::persist` module layers the
//! compact-JSON mutation encoding and the recovery semantics on top.
//!
//! [`PulseLibrary`]: https://example.invalid/accqoc-repro

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every WAL file (`AQWL` + format version 1).
pub const WAL_MAGIC: [u8; 8] = *b"AQWL\x00\x00\x00\x01";

/// Frame header size: 4-byte little-endian payload length + 4-byte CRC32.
const FRAME_HEADER: usize = 8;

/// Upper bound on a single record payload (64 MiB). A length prefix
/// beyond this is treated as corruption rather than an allocation
/// request: no legitimate library mutation comes close.
pub const MAX_RECORD_LEN: u32 = 64 * 1024 * 1024;

/// Errors from the durability substrate.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// A complete WAL frame or artifact failed validation. Unlike a
    /// truncated tail (which replay tolerates), this means bytes were
    /// altered after they were durably written, so recovery stops at the
    /// last good record and reports where.
    Corrupt {
        /// File the corruption was found in.
        path: PathBuf,
        /// Byte offset of the bad frame within the file.
        offset: u64,
        /// Number of records that replayed cleanly before the bad frame.
        records_ok: usize,
        /// What failed validation.
        message: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt {
                path,
                offset,
                records_ok,
                message,
            } => write!(
                f,
                "corrupt store file {} at byte {offset} ({records_ok} records ok): {message}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Corrupt { .. } => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, StoreError>;

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC32 (the `cksum`/zlib polynomial, reflected).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Outcome of replaying a WAL file.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Every record payload that replayed cleanly, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes of the file covered by clean frames (including the magic).
    /// [`WalWriter::open`] truncates the file back to this length, so a
    /// torn tail from a crash mid-append is discarded exactly once.
    pub good_bytes: u64,
    /// Bytes of torn tail past the last clean frame (0 on a clean file).
    pub truncated_bytes: u64,
}

/// Replays a WAL file, returning every cleanly framed record.
///
/// A missing file is an empty replay (cold start), and a torn tail —
/// fewer bytes than the last frame's header promised — is tolerated:
/// appends are atomic at the frame level, so a crash mid-write can only
/// tear the final frame. A *complete* frame whose checksum does not
/// match is different: the bytes were durable and then changed, so this
/// returns [`StoreError::Corrupt`] identifying the offset and how many
/// records were recovered before it.
pub fn replay_wal(path: &Path) -> Result<WalReplay> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(WalReplay::default()),
        Err(e) => return Err(e.into()),
    };
    if bytes.is_empty() {
        return Ok(WalReplay::default());
    }
    if bytes.len() < WAL_MAGIC.len() || bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(StoreError::Corrupt {
            path: path.to_path_buf(),
            offset: 0,
            records_ok: 0,
            message: "bad WAL magic".to_string(),
        });
    }

    let mut replay = WalReplay {
        good_bytes: WAL_MAGIC.len() as u64,
        ..WalReplay::default()
    };
    let mut pos = WAL_MAGIC.len();
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < FRAME_HEADER {
            // Torn header from a crash mid-append.
            replay.truncated_bytes = remaining as u64;
            return Ok(replay);
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_RECORD_LEN {
            return Err(StoreError::Corrupt {
                path: path.to_path_buf(),
                offset: pos as u64,
                records_ok: replay.records.len(),
                message: format!("frame length {len} exceeds cap {MAX_RECORD_LEN}"),
            });
        }
        let len = len as usize;
        if remaining < FRAME_HEADER + len {
            // Torn payload from a crash mid-append.
            replay.truncated_bytes = remaining as u64;
            return Ok(replay);
        }
        let payload = &bytes[pos + FRAME_HEADER..pos + FRAME_HEADER + len];
        if crc32(payload) != crc {
            return Err(StoreError::Corrupt {
                path: path.to_path_buf(),
                offset: pos as u64,
                records_ok: replay.records.len(),
                message: "frame checksum mismatch".to_string(),
            });
        }
        replay.records.push(payload.to_vec());
        pos += FRAME_HEADER + len;
        replay.good_bytes = pos as u64;
    }
    Ok(replay)
}

/// Append handle on a WAL file. Every [`append`](WalWriter::append) is
/// fsync'd before returning, so an acknowledged record survives a crash.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    records: usize,
}

impl WalWriter {
    /// Opens (or creates) the WAL at `path` for appending.
    ///
    /// The existing contents are validated first: a torn tail is
    /// truncated away (crash tolerance), while checksum corruption is
    /// reported as [`StoreError::Corrupt`]. Returns the writer together
    /// with the replay of the surviving records so the caller opens and
    /// recovers in one validated pass.
    pub fn open(path: &Path) -> Result<(WalWriter, WalReplay)> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let replay = replay_wal(path)?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        if replay.good_bytes == 0 {
            // Fresh (or empty) file: stamp the magic.
            file.set_len(0)?;
            file.write_all(&WAL_MAGIC)?;
            file.sync_data()?;
        } else if replay.truncated_bytes > 0 {
            // Discard the torn tail so future frames start clean.
            file.set_len(replay.good_bytes)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;
        let writer = WalWriter {
            file,
            path: path.to_path_buf(),
            records: replay.records.len(),
        };
        Ok((writer, replay))
    }

    /// Appends one record and fsyncs. The payload is opaque bytes.
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        if payload.len() as u64 > MAX_RECORD_LEN as u64 {
            return Err(StoreError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "record of {} bytes exceeds cap {MAX_RECORD_LEN}",
                    payload.len()
                ),
            )));
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.records += 1;
        Ok(())
    }

    /// Truncates the log back to just the magic (after a snapshot has
    /// made the logged suffix redundant) and fsyncs.
    pub fn reset(&mut self) -> Result<()> {
        self.file.set_len(WAL_MAGIC.len() as u64)?;
        self.file.seek(SeekFrom::Start(WAL_MAGIC.len() as u64))?;
        self.file.sync_data()?;
        self.records = 0;
        Ok(())
    }

    /// Number of records currently in the log.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Writes `bytes` to `path` atomically: the content lands in a `.tmp`
/// sibling first, is fsync'd, and is then renamed over the target, so
/// readers observe either the old artifact or the new one — never a
/// torn prefix. Used by both the legacy `save_cache` path and the
/// snapshot path.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    std::fs::create_dir_all(&parent)?;
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            StoreError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                "write_atomic target has no file name",
            ))
        })?
        .to_os_string();
    let mut tmp_name = file_name;
    tmp_name.push(".tmp");
    let tmp = parent.join(tmp_name);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // Make the rename itself durable where the platform allows it.
    if let Ok(dir) = File::open(&parent) {
        dir.sync_all().ok();
    }
    Ok(())
}

/// Reads `path`, mapping a missing file to `Ok(None)` (cold start).
pub fn read_optional(path: &Path) -> Result<Option<Vec<u8>>> {
    match std::fs::read(path) {
        Ok(bytes) => Ok(Some(bytes)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e.into()),
    }
}

/// Reads `path` to a string, mapping a missing file to `Ok(None)`.
pub fn read_optional_string(path: &Path) -> Result<Option<String>> {
    match read_optional(path)? {
        None => Ok(None),
        Some(bytes) => String::from_utf8(bytes)
            .map(Some)
            .map_err(|e| StoreError::Corrupt {
                path: path.to_path_buf(),
                offset: e.utf8_error().valid_up_to() as u64,
                records_ok: 0,
                message: "artifact is not valid UTF-8".to_string(),
            }),
    }
}

/// Copies a file's bytes, used by tests to simulate crashes. Lives here
/// (rather than in test code) so the bench and integration tests share
/// one definition.
pub fn read_file(path: &Path) -> Result<Vec<u8>> {
    Ok(std::fs::read(path)?)
}

/// Canonical on-disk location of one shard's store inside a sharded
/// deployment's base directory: `<base>/shard-<index>`. Every layer that
/// names shard stores — the router CLI, the rebalance executor, the
/// chaos tests, the bench harness — goes through this one function so a
/// deployment's layout is never spelled twice.
pub fn shard_dir(base: &Path, shard: usize) -> PathBuf {
    base.join(format!("shard-{shard}"))
}

/// Moves a whole store directory (WAL + snapshot pair + any sidecars)
/// from `src` to `dst` wholesale. Prefers an atomic `rename`; when the
/// paths straddle filesystems it falls back to copy-then-remove, copying
/// file by file and only deleting `src` after every byte landed. `dst`
/// must not already exist (a half-merged store is worse than a typed
/// error).
pub fn move_store_dir(src: &Path, dst: &Path) -> Result<()> {
    if dst.exists() {
        return Err(StoreError::Io(io::Error::new(
            io::ErrorKind::AlreadyExists,
            format!("move target {} already exists", dst.display()),
        )));
    }
    if let Some(parent) = dst.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    match std::fs::rename(src, dst) {
        Ok(()) => Ok(()),
        Err(_) => {
            copy_dir_recursive(src, dst)?;
            std::fs::remove_dir_all(src)?;
            Ok(())
        }
    }
}

fn copy_dir_recursive(src: &Path, dst: &Path) -> Result<()> {
    std::fs::create_dir_all(dst)?;
    for entry in std::fs::read_dir(src)? {
        let entry = entry?;
        let target = dst.join(entry.file_name());
        if entry.file_type()?.is_dir() {
            copy_dir_recursive(&entry.path(), &target)?;
        } else {
            std::fs::copy(entry.path(), &target)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("accqoc_store_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn append_and_replay_round_trip() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("wal.log");
        let payloads: Vec<Vec<u8>> = vec![b"alpha".to_vec(), vec![], vec![0xFF; 1024]];
        {
            let (mut wal, replay) = WalWriter::open(&path).unwrap();
            assert!(replay.records.is_empty());
            for p in &payloads {
                wal.append(p).unwrap();
            }
            assert_eq!(wal.records(), 3);
        }
        let replay = replay_wal(&path).unwrap();
        assert_eq!(replay.records, payloads);
        assert_eq!(replay.truncated_bytes, 0);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_file_is_cold_start() {
        let dir = tmp_dir("missing");
        let replay = replay_wal(&dir.join("nope.log")).unwrap();
        assert!(replay.records.is_empty());
        assert_eq!(replay.good_bytes, 0);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmp_dir("torn");
        let path = dir.join("wal.log");
        {
            let (mut wal, _) = WalWriter::open(&path).unwrap();
            wal.append(b"first").unwrap();
            wal.append(b"second").unwrap();
        }
        // Simulate a crash mid-append: chop bytes off the last frame.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let (mut wal, replay) = WalWriter::open(&path).unwrap();
        assert_eq!(replay.records, vec![b"first".to_vec()]);
        assert!(replay.truncated_bytes > 0);
        // The torn tail is gone: appending now yields a clean two-record log.
        wal.append(b"third").unwrap();
        drop(wal);
        let replay = replay_wal(&path).unwrap();
        assert_eq!(replay.records, vec![b"first".to_vec(), b"third".to_vec()]);
        assert_eq!(replay.truncated_bytes, 0);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn checksum_corruption_is_typed_error() {
        let dir = tmp_dir("corrupt");
        let path = dir.join("wal.log");
        {
            let (mut wal, _) = WalWriter::open(&path).unwrap();
            wal.append(b"good record").unwrap();
            wal.append(b"soon corrupted").unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload bit inside the *second* frame (past magic +
        // frame1 header + frame1 payload + frame2 header).
        let second_payload = WAL_MAGIC.len() + FRAME_HEADER + b"good record".len() + FRAME_HEADER;
        bytes[second_payload] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let err = replay_wal(&path).unwrap_err();
        match err {
            StoreError::Corrupt {
                records_ok, offset, ..
            } => {
                assert_eq!(records_ok, 1, "stops at last good record");
                assert_eq!(
                    offset,
                    (WAL_MAGIC.len() + FRAME_HEADER + b"good record".len()) as u64
                );
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn absurd_length_prefix_is_corruption_not_allocation() {
        let dir = tmp_dir("hugelen");
        let path = dir.join("wal.log");
        let mut bytes = WAL_MAGIC.to_vec();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        // Enough trailing bytes that it's not a short header.
        bytes.extend_from_slice(&[0u8; 32]);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(replay_wal(&path), Err(StoreError::Corrupt { .. })));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn reset_empties_the_log() {
        let dir = tmp_dir("reset");
        let path = dir.join("wal.log");
        let (mut wal, _) = WalWriter::open(&path).unwrap();
        wal.append(b"a").unwrap();
        wal.append(b"b").unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.records(), 0);
        wal.append(b"c").unwrap();
        drop(wal);
        let replay = replay_wal(&path).unwrap();
        assert_eq!(replay.records, vec![b"c".to_vec()]);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn write_atomic_replaces_and_never_tears() {
        let dir = tmp_dir("atomic");
        let path = dir.join("artifact.json");
        write_atomic(&path, b"version one").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"version one");
        write_atomic(&path, b"version two, longer").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"version two, longer");
        // No temp residue.
        assert!(!dir.join("artifact.json.tmp").exists());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn shard_dir_layout_is_stable() {
        let base = Path::new("/data/ring");
        assert_eq!(shard_dir(base, 0), base.join("shard-0"));
        assert_eq!(shard_dir(base, 12), base.join("shard-12"));
    }

    #[test]
    fn move_store_dir_relocates_wholesale_and_refuses_clobber() {
        let dir = tmp_dir("move");
        let src = dir.join("shard-0");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(src.join("library.wal"), b"wal bytes").unwrap();
        std::fs::write(src.join("snapshot.json"), b"snapshot bytes").unwrap();
        let dst = dir.join("shard-0.retired");
        move_store_dir(&src, &dst).unwrap();
        assert!(!src.exists(), "source is gone after the move");
        assert_eq!(
            std::fs::read(dst.join("library.wal")).unwrap(),
            b"wal bytes"
        );
        assert_eq!(
            std::fs::read(dst.join("snapshot.json")).unwrap(),
            b"snapshot bytes"
        );
        // A second move into the same target is a typed refusal, not a merge.
        std::fs::create_dir_all(&src).unwrap();
        assert!(move_store_dir(&src, &dst).is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn read_optional_maps_missing_to_none() {
        let dir = tmp_dir("optional");
        assert!(read_optional(&dir.join("gone")).unwrap().is_none());
        std::fs::write(dir.join("here"), b"x").unwrap();
        assert_eq!(read_optional(&dir.join("here")).unwrap().unwrap(), b"x");
        std::fs::remove_dir_all(dir).ok();
    }
}
