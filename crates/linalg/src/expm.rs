//! Matrix exponential via Padé approximation with scaling and squaring.
//!
//! Implements Higham's 2005 algorithm: pick the smallest Padé degree
//! `m ∈ {3,5,7,9,13}` whose accuracy bound covers `‖A‖₁`, scaling the input
//! by `2⁻ˢ` first when even degree 13 is insufficient. This is the kernel
//! GRAPE spends most of its time in (`exp(−i·Δt·H)` per time slice), which
//! is why the `repro_why` note calls out thin `expm` support in the Rust
//! ecosystem — we provide our own.
//!
//! Also provides the Fréchet derivative `L(A, E)` through the classic
//! `2n×2n` block augmentation, used by the exact-gradient option of the
//! GRAPE solver and by gradient unit tests.

use crate::complex::C64;
use crate::lu::Lu;
use crate::mat::Mat;
use crate::LinalgError;

/// `‖A‖₁` thresholds from Higham (2005), Table 2.3: the largest norm for
/// which the degree-`m` diagonal Padé approximant is accurate to double
/// precision.
const THETA_3: f64 = 1.495_585_217_958_292e-2;
const THETA_5: f64 = 2.539_398_330_063_23e-1;
const THETA_7: f64 = 9.504_178_996_162_932e-1;
const THETA_9: f64 = 2.097_847_961_257_068;
const THETA_13: f64 = 5.371_920_351_148_152;

const B3: [f64; 4] = [120.0, 60.0, 12.0, 1.0];
const B5: [f64; 6] = [30240.0, 15120.0, 3360.0, 420.0, 30.0, 1.0];
const B7: [f64; 8] = [
    17_297_280.0,
    8_648_640.0,
    1_995_840.0,
    277_200.0,
    25_200.0,
    1_512.0,
    56.0,
    1.0,
];
const B9: [f64; 10] = [
    17_643_225_600.0,
    8_821_612_800.0,
    2_075_673_600.0,
    302_702_400.0,
    30_270_240.0,
    2_162_160.0,
    110_880.0,
    3_960.0,
    90.0,
    1.0,
];
const B13: [f64; 14] = [
    64_764_752_532_480_000.0,
    32_382_376_266_240_000.0,
    7_771_770_303_897_600.0,
    1_187_353_796_428_800.0,
    129_060_195_264_000.0,
    10_559_470_521_600.0,
    670_442_572_800.0,
    33_522_128_640.0,
    1_323_241_920.0,
    40_840_800.0,
    960_960.0,
    16_380.0,
    182.0,
    1.0,
];

/// Computes the matrix exponential `e^A`.
///
/// # Errors
///
/// Returns an error if `A` is not square or contains non-finite entries.
/// The internal Padé linear solve cannot fail for finite input because
/// `V − U` is provably nonsingular at the chosen scaling.
///
/// # Examples
///
/// ```
/// use accqoc_linalg::{expm, Mat, C64};
///
/// // exp of a diagonal matrix exponentiates the diagonal.
/// let a = Mat::diag(&[C64::real(1.0), C64::real(-2.0)]);
/// let e = expm(&a)?;
/// assert!((e[(0, 0)].re - 1f64.exp()).abs() < 1e-12);
/// assert!((e[(1, 1)].re - (-2f64).exp()).abs() < 1e-12);
/// # Ok::<(), accqoc_linalg::LinalgError>(())
/// ```
pub fn expm(a: &Mat) -> Result<Mat, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    if !a.is_finite() {
        return Err(LinalgError::NonFinite);
    }
    let norm = a.one_norm();
    if norm <= THETA_3 {
        return pade(a, &B3);
    }
    if norm <= THETA_5 {
        return pade(a, &B5);
    }
    if norm <= THETA_7 {
        return pade(a, &B7);
    }
    if norm <= THETA_9 {
        return pade(a, &B9);
    }
    // Scaling and squaring with degree 13.
    let s = scaling_power(norm);
    let scaled = a.scale_re(0.5f64.powi(s));
    let mut e = pade13(&scaled)?;
    for _ in 0..s {
        e = e.matmul(&e);
    }
    Ok(e)
}

/// Computes `exp(−i·t·H)` — the unitary propagator of Hamiltonian `H` over
/// time `t` (with `ħ = 1`). This is the hot path of GRAPE propagation.
///
/// # Errors
///
/// Propagates [`expm`] errors.
///
/// # Examples
///
/// ```
/// use accqoc_linalg::{expm_i, Mat};
/// use std::f64::consts::PI;
///
/// // exp(−i·(π/2)·X) is an X rotation by π (up to phase): |0⟩ → −i|1⟩.
/// let x = Mat::from_reals(&[0.0, 1.0, 1.0, 0.0]);
/// let u = expm_i(&x, PI / 2.0)?;
/// assert!(u[(0, 0)].abs() < 1e-12);
/// assert!((u[(1, 0)].im + 1.0).abs() < 1e-12);
/// # Ok::<(), accqoc_linalg::LinalgError>(())
/// ```
pub fn expm_i(h: &Mat, t: f64) -> Result<Mat, LinalgError> {
    expm(&h.scale(C64::imag(-t)))
}

/// Number of squarings needed to bring the norm under `θ₁₃`.
fn scaling_power(norm: f64) -> i32 {
    let ratio = norm / THETA_13;
    if ratio <= 1.0 {
        0
    } else {
        ratio.log2().ceil() as i32
    }
}

/// Degree-`m` diagonal Padé approximant for `m ∈ {3,5,7,9}` (coefficients
/// in `b`): `U` collects odd powers, `V` even powers, and
/// `r(A) = (V−U)⁻¹(V+U)`.
fn pade(a: &Mat, b: &[f64]) -> Result<Mat, LinalgError> {
    let n = a.rows();
    let a2 = a.matmul(a);
    // Even/odd polynomial accumulation in A².
    let mut even = Mat::identity(n).scale_re(b[0]);
    let mut odd = Mat::identity(n).scale_re(b[1]);
    let mut pow = Mat::identity(n); // A^{2k}
    for k in 1..=(b.len() - 1) / 2 {
        pow = pow.matmul(&a2);
        even.axpy(C64::real(b[2 * k]), &pow);
        if 2 * k + 1 < b.len() {
            odd.axpy(C64::real(b[2 * k + 1]), &pow);
        }
    }
    let u = a.matmul(&odd);
    solve_pade(&even, &u)
}

/// Degree-13 Padé with the factored evaluation scheme from Higham (2005).
fn pade13(a: &Mat) -> Result<Mat, LinalgError> {
    let n = a.rows();
    let b = &B13;
    let id = Mat::identity(n);
    let a2 = a.matmul(a);
    let a4 = a2.matmul(&a2);
    let a6 = a2.matmul(&a4);

    // U = A·(A⁶·(b13·A⁶ + b11·A⁴ + b9·A²) + b7·A⁶ + b5·A⁴ + b3·A² + b1·I)
    let mut w1 = a6.scale_re(b[13]);
    w1.axpy(C64::real(b[11]), &a4);
    w1.axpy(C64::real(b[9]), &a2);
    let mut w = a6.matmul(&w1);
    w.axpy(C64::real(b[7]), &a6);
    w.axpy(C64::real(b[5]), &a4);
    w.axpy(C64::real(b[3]), &a2);
    w.axpy(C64::real(b[1]), &id);
    let u = a.matmul(&w);

    // V = A⁶·(b12·A⁶ + b10·A⁴ + b8·A²) + b6·A⁶ + b4·A⁴ + b2·A² + b0·I
    let mut z1 = a6.scale_re(b[12]);
    z1.axpy(C64::real(b[10]), &a4);
    z1.axpy(C64::real(b[8]), &a2);
    let mut v = a6.matmul(&z1);
    v.axpy(C64::real(b[6]), &a6);
    v.axpy(C64::real(b[4]), &a4);
    v.axpy(C64::real(b[2]), &a2);
    v.axpy(C64::real(b[0]), &id);

    solve_pade(&v, &u)
}

/// Solves `(V − U)·X = (V + U)`.
fn solve_pade(v: &Mat, u: &Mat) -> Result<Mat, LinalgError> {
    let denom = v - u;
    let numer = v + u;
    Lu::factor(&denom)?.solve_mat(&numer)
}

/// Computes both `e^A` and the Fréchet derivative `L(A, E)` — the
/// directional derivative of the matrix exponential at `A` in direction
/// `E`, i.e. `exp(A + hE) = exp(A) + h·L(A,E) + O(h²)`.
///
/// Uses the block identity
/// `exp([[A, E], [0, A]]) = [[e^A, L(A,E)], [0, e^A]]`.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] if `E` is not the same shape as
/// `A`, and propagates [`expm`] errors.
///
/// # Examples
///
/// ```
/// use accqoc_linalg::{expm_frechet, Mat, C64};
///
/// // At A = 0 the derivative is exactly E.
/// let zero = Mat::zeros(2, 2);
/// let e = Mat::from_reals(&[0.0, 1.0, 1.0, 0.0]);
/// let (exp_a, l) = expm_frechet(&zero, &e)?;
/// assert!(exp_a.approx_eq(&Mat::identity(2), 1e-12));
/// assert!(l.approx_eq(&e, 1e-12));
/// # Ok::<(), accqoc_linalg::LinalgError>(())
/// ```
pub fn expm_frechet(a: &Mat, e: &Mat) -> Result<(Mat, Mat), LinalgError> {
    if a.rows() != e.rows() || a.cols() != e.cols() {
        return Err(LinalgError::ShapeMismatch {
            what: "frechet direction shape",
            expected: a.rows(),
            got: e.rows(),
        });
    }
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    let mut block = Mat::zeros(2 * n, 2 * n);
    for i in 0..n {
        for j in 0..n {
            block[(i, j)] = a[(i, j)];
            block[(n + i, n + j)] = a[(i, j)];
            block[(i, n + j)] = e[(i, j)];
        }
    }
    let big = expm(&block)?;
    let mut exp_a = Mat::zeros(n, n);
    let mut deriv = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            exp_a[(i, j)] = big[(i, j)];
            deriv[(i, j)] = big[(i, n + j)];
        }
    }
    Ok((exp_a, deriv))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{I, ONE, ZERO};

    fn pauli_x() -> Mat {
        Mat::from_reals(&[0.0, 1.0, 1.0, 0.0])
    }

    fn pauli_z() -> Mat {
        Mat::from_reals(&[1.0, 0.0, 0.0, -1.0])
    }

    #[test]
    fn expm_zero_is_identity() {
        for n in [1, 2, 4, 8] {
            let e = expm(&Mat::zeros(n, n)).unwrap();
            assert!(e.approx_eq(&Mat::identity(n), 1e-14));
        }
    }

    #[test]
    fn expm_diagonal() {
        let a = Mat::diag(&[C64::real(0.3), C64::new(0.0, 1.0), C64::real(-5.0)]);
        let e = expm(&a).unwrap();
        assert!(e[(0, 0)].approx_eq(C64::real(0.3f64.exp()), 1e-13));
        assert!(e[(1, 1)].approx_eq(C64::cis(1.0), 1e-13));
        assert!(e[(2, 2)].approx_eq(C64::real((-5.0f64).exp()), 1e-13));
        assert!(e[(0, 1)].approx_eq(ZERO, 1e-14));
    }

    #[test]
    fn pauli_rotation_closed_form() {
        // exp(−iθX) = cos θ · I − i sin θ · X.
        for &theta in &[0.1, 0.7, 1.9, 3.4, 12.0] {
            let u = expm_i(&pauli_x(), theta).unwrap();
            let expect = {
                let mut m = Mat::identity(2).scale_re(theta.cos());
                m.axpy(C64::imag(-theta.sin()), &pauli_x());
                m
            };
            assert!(u.approx_eq(&expect, 1e-12), "theta={theta}");
        }
    }

    #[test]
    fn exponential_of_skew_hermitian_is_unitary() {
        // Large norm exercises the scaling-and-squaring branch.
        for scale in [0.01, 1.0, 10.0, 100.0] {
            let h = Mat::from_fn(4, 4, |i, j| {
                let v = C64::new(
                    ((i + 2 * j) % 5) as f64 - 2.0,
                    ((3 * i + j) % 7) as f64 - 3.0,
                );
                if i == j {
                    C64::real(v.re)
                } else if i < j {
                    v
                } else {
                    ZERO
                }
            });
            // Hermitize.
            let h = &h + &h.dagger();
            let u = expm_i(&h, scale).unwrap();
            assert!(u.is_unitary(1e-10), "scale={scale}");
        }
    }

    #[test]
    fn group_property_for_commuting_args() {
        let z = pauli_z();
        let a = expm_i(&z, 0.4).unwrap();
        let b = expm_i(&z, 0.9).unwrap();
        let ab = expm_i(&z, 1.3).unwrap();
        assert!(a.matmul(&b).approx_eq(&ab, 1e-12));
    }

    #[test]
    fn inverse_is_negative_exponent() {
        let h = &pauli_x() + &pauli_z();
        let u = expm_i(&h, 0.8).unwrap();
        let u_inv = expm_i(&h, -0.8).unwrap();
        assert!(u.matmul(&u_inv).approx_eq(&Mat::identity(2), 1e-12));
    }

    #[test]
    fn all_pade_degrees_agree_with_squaring() {
        // Same matrix at different scales routes through different degrees;
        // exp(A)² = exp(2A) ties them together.
        let base = Mat::from_fn(3, 3, |i, j| {
            C64::new((i as f64 - j as f64) * 0.11, 0.07 * (i + j) as f64)
        });
        for &t in &[0.005, 0.1, 0.5, 1.5, 4.0, 20.0] {
            let e1 = expm(&base.scale_re(t)).unwrap();
            let e2 = expm(&base.scale_re(t / 2.0)).unwrap();
            let e2sq = e2.matmul(&e2);
            let err = e1.max_abs_diff(&e2sq) / e1.max_abs().max(1.0);
            assert!(err < 1e-10, "t={t}, err={err}");
        }
    }

    #[test]
    fn nilpotent_matrix_exact() {
        // exp([[0,1],[0,0]]) = [[1,1],[0,1]] exactly.
        let n = Mat::from_reals(&[0.0, 1.0, 0.0, 0.0]);
        let e = expm(&n).unwrap();
        assert!(e.approx_eq(&Mat::from_reals(&[1.0, 1.0, 0.0, 1.0]), 1e-14));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            expm(&Mat::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
        let mut bad = Mat::identity(2);
        bad[(0, 0)] = C64::real(f64::NAN);
        assert!(matches!(expm(&bad), Err(LinalgError::NonFinite)));
    }

    #[test]
    fn frechet_matches_finite_difference() {
        let a = Mat::from_fn(3, 3, |i, j| {
            C64::new(0.2 * (i as f64 - j as f64), 0.1 * ((i + j) % 3) as f64)
        });
        let e = Mat::from_fn(3, 3, |i, j| {
            C64::new(0.05 * (i * j) as f64, -0.03 * (i as f64 + 1.0))
        });
        let (_, l) = expm_frechet(&a, &e).unwrap();
        let h = 1e-6;
        let plus = expm(&{
            let mut m = a.clone();
            m.axpy(C64::real(h), &e);
            m
        })
        .unwrap();
        let minus = expm(&{
            let mut m = a.clone();
            m.axpy(C64::real(-h), &e);
            m
        })
        .unwrap();
        let fd = (&plus - &minus).scale_re(0.5 / h);
        assert!(
            l.approx_eq(&fd, 1e-7),
            "frechet vs fd diff = {}",
            l.max_abs_diff(&fd)
        );
    }

    #[test]
    fn frechet_linear_in_direction() {
        let a = pauli_x().scale(I).scale_re(0.7);
        let e1 = pauli_z();
        let e2 = pauli_x();
        let (_, l1) = expm_frechet(&a, &e1).unwrap();
        let (_, l2) = expm_frechet(&a, &e2).unwrap();
        let combo = &e1.scale_re(2.0) + &e2.scale_re(-3.0);
        let (_, lc) = expm_frechet(&a, &combo).unwrap();
        let expect = &l1.scale_re(2.0) + &l2.scale_re(-3.0);
        assert!(lc.approx_eq(&expect, 1e-11));
    }

    #[test]
    fn frechet_shape_mismatch() {
        let a = Mat::identity(2);
        let e = Mat::zeros(3, 3);
        assert!(matches!(
            expm_frechet(&a, &e),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn one_dimensional_case() {
        let a = Mat::from_flat(&[C64::new(0.5, -1.2)]);
        let e = expm(&a).unwrap();
        assert!(e[(0, 0)].approx_eq(C64::new(0.5, -1.2).exp(), 1e-13));
        assert!(ONE.approx_eq(ONE, 0.0));
    }
}
