//! A minimal, dependency-free double-precision complex number.
//!
//! The workspace deliberately avoids external numerics crates (see
//! `DESIGN.md`); quantum unitaries are small and dense, so a plain
//! `(re, im)` pair with inlined arithmetic is all that is needed.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use accqoc_linalg::C64;
///
/// let z = C64::new(3.0, 4.0);
/// assert_eq!(z.abs(), 5.0);
/// assert_eq!(z * z.conj(), C64::new(25.0, 0.0));
/// ```
#[derive(Clone, Copy, Default, PartialEq)]
pub struct C64 {
    /// Real component.
    pub re: f64,
    /// Imaginary component.
    pub im: f64,
}

/// The imaginary unit `i`.
pub const I: C64 = C64 { re: 0.0, im: 1.0 };
/// Complex one.
pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
/// Complex zero.
pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };

impl C64 {
    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a purely imaginary complex number.
    #[inline]
    pub const fn imag(im: f64) -> Self {
        Self { re: 0.0, im }
    }

    /// Returns `e^{iθ}` — a unit-modulus complex number at phase `θ`.
    ///
    /// ```
    /// use accqoc_linalg::C64;
    /// let z = C64::cis(std::f64::consts::PI);
    /// assert!((z.re + 1.0).abs() < 1e-15 && z.im.abs() < 1e-15);
    /// ```
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Self { re: c, im: s }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|z|²` — cheaper than [`C64::abs`] when comparing
    /// magnitudes.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns non-finite components when `z == 0`, mirroring `f64`
    /// division semantics.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Self {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        let (s, c) = self.im.sin_cos();
        Self {
            re: r * c,
            im: r * s,
        }
    }

    /// Principal square root.
    ///
    /// The branch cut follows the convention of returning the root with
    /// non-negative real part.
    pub fn sqrt(self) -> Self {
        if self.re == 0.0 && self.im == 0.0 {
            return ZERO;
        }
        let m = self.abs();
        let re = ((m + self.re) / 2.0).sqrt();
        let im_mag = ((m - self.re) / 2.0).sqrt();
        Self {
            re,
            im: if self.im < 0.0 { -im_mag } else { im_mag },
        }
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Fused multiply-add: `self * b + c`, computed with scalar FMA-friendly
    /// expressions. Used in matrix-multiplication inner loops.
    #[inline]
    pub fn mul_add(self, b: C64, c: C64) -> Self {
        Self {
            re: self.re * b.re - self.im * b.im + c.re,
            im: self.re * b.im + self.im * b.re + c.im,
        }
    }

    /// Approximate equality within absolute tolerance `tol` per component
    /// distance (Euclidean on the complex plane).
    #[inline]
    pub fn approx_eq(self, other: C64, tol: f64) -> bool {
        (self - other).abs() <= tol
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        Self::real(re)
    }
}

impl fmt::Debug for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 || self.im.is_nan() {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}-{}i", self.re, -self.im)
        }
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64 {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64 {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z·w⁻¹ by definition
    fn div(self, rhs: C64) -> C64 {
        self * rhs.recip()
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64 {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        C64 {
            re: self.re / rhs,
            im: self.im / rhs,
        }
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        *self = *self + rhs;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        *self = *self - rhs;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, rhs: C64) {
        *self = *self / rhs;
    }
}

impl MulAssign<f64> for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = self.scale(rhs);
    }
}

impl Sum for C64 {
    fn sum<It: Iterator<Item = C64>>(iter: It) -> C64 {
        iter.fold(ZERO, |a, b| a + b)
    }
}

impl Product for C64 {
    fn product<It: Iterator<Item = C64>>(iter: It) -> C64 {
        iter.fold(ONE, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn construction_and_accessors() {
        let z = C64::new(1.5, -2.5);
        assert_eq!(z.re, 1.5);
        assert_eq!(z.im, -2.5);
        assert_eq!(C64::real(2.0), C64::new(2.0, 0.0));
        assert_eq!(C64::imag(3.0), C64::new(0.0, 3.0));
        assert_eq!(C64::from(4.0), C64::real(4.0));
    }

    #[test]
    fn arithmetic_identities() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(-0.5, 3.0);
        assert!((a + b - b).approx_eq(a, TOL));
        assert!((a * b / b).approx_eq(a, TOL));
        assert!((a * b).approx_eq(b * a, TOL));
        assert!((-a + a).approx_eq(ZERO, TOL));
        assert!((a * ONE).approx_eq(a, TOL));
        assert!((a * ZERO).approx_eq(ZERO, TOL));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!((I * I).approx_eq(C64::real(-1.0), TOL));
    }

    #[test]
    fn conj_and_modulus() {
        let z = C64::new(3.0, -4.0);
        assert_eq!(z.conj(), C64::new(3.0, 4.0));
        assert!((z.abs() - 5.0).abs() < TOL);
        assert!((z.norm_sqr() - 25.0).abs() < TOL);
        assert!((z * z.conj()).approx_eq(C64::real(25.0), TOL));
    }

    #[test]
    fn cis_and_exp_agree() {
        for k in 0..16 {
            let theta = k as f64 * 0.7 - 5.0;
            let a = C64::cis(theta);
            let b = C64::imag(theta).exp();
            assert!(a.approx_eq(b, TOL), "{a} vs {b}");
            assert!((a.abs() - 1.0).abs() < TOL);
        }
    }

    #[test]
    fn exp_of_real_matches_scalar() {
        let z = C64::real(1.25).exp();
        assert!((z.re - 1.25f64.exp()).abs() < TOL);
        assert!(z.im.abs() < TOL);
    }

    #[test]
    fn sqrt_roundtrip() {
        let samples = [
            C64::new(4.0, 0.0),
            C64::new(0.0, 2.0),
            C64::new(-1.0, 0.0),
            C64::new(-3.0, -4.0),
            C64::new(1e-9, 7.0),
        ];
        for z in samples {
            let r = z.sqrt();
            assert!((r * r).approx_eq(z, 1e-10), "sqrt({z}) = {r}");
            assert!(r.re >= 0.0, "principal branch violated for {z}");
        }
        assert_eq!(ZERO.sqrt(), ZERO);
    }

    #[test]
    fn sqrt_of_negative_real_is_positive_imaginary() {
        let r = C64::real(-9.0).sqrt();
        assert!(r.approx_eq(C64::imag(3.0), TOL));
    }

    #[test]
    fn recip_inverse() {
        let z = C64::new(2.0, -7.0);
        assert!((z * z.recip()).approx_eq(ONE, TOL));
    }

    #[test]
    fn arg_quadrants() {
        assert!((C64::new(1.0, 0.0).arg() - 0.0).abs() < TOL);
        assert!((C64::new(0.0, 1.0).arg() - std::f64::consts::FRAC_PI_2).abs() < TOL);
        assert!((C64::new(-1.0, 0.0).arg() - std::f64::consts::PI).abs() < TOL);
        assert!((C64::new(0.0, -1.0).arg() + std::f64::consts::FRAC_PI_2).abs() < TOL);
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        let c = C64::new(-0.5, 0.25);
        assert!(a.mul_add(b, c).approx_eq(a * b + c, TOL));
    }

    #[test]
    fn sum_and_product_impls() {
        let xs = [C64::new(1.0, 1.0), C64::new(2.0, -1.0), C64::new(0.5, 0.0)];
        let s: C64 = xs.iter().copied().sum();
        assert!(s.approx_eq(C64::new(3.5, 0.0), TOL));
        let p: C64 = xs.iter().copied().product();
        assert!(p.approx_eq(
            C64::new(1.0, 1.0) * C64::new(2.0, -1.0) * C64::new(0.5, 0.0),
            TOL
        ));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(C64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(C64::new(1.0, -2.0).to_string(), "1-2i");
        assert_eq!(format!("{:?}", C64::new(0.0, 0.0)), "0+0i");
    }

    #[test]
    fn assign_ops() {
        let mut z = C64::new(1.0, 1.0);
        z += C64::new(1.0, 0.0);
        assert_eq!(z, C64::new(2.0, 1.0));
        z -= C64::new(0.0, 1.0);
        assert_eq!(z, C64::new(2.0, 0.0));
        z *= C64::new(0.0, 1.0);
        assert_eq!(z, C64::new(0.0, 2.0));
        z /= C64::new(0.0, 2.0);
        assert!(z.approx_eq(ONE, TOL));
        z *= 3.0;
        assert!(z.approx_eq(C64::real(3.0), TOL));
    }
}
