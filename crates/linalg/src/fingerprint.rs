//! Cheap spectral fingerprint kernels for unitary matrices.
//!
//! The AccQOC pulse library needs a *sublinear* nearest-neighbor
//! candidate search over thousands of cached group unitaries; evaluating
//! an exact similarity function (Frobenius, trace overlap, Uhlmann)
//! against every cached entry is O(n·d²) per query and dominates the
//! online serving path. These kernels compress a `d×d` unitary into a
//! handful of floats that are
//!
//! - **global-phase invariant** — `U` and `e^{iθ}U` fingerprint
//!   identically, matching the phase-invariant fidelity GRAPE optimizes;
//! - **cheap** — one pass over the entries plus `k−1` matrix products
//!   for the trace moments;
//! - **discriminative** — close unitaries (in any of the similarity
//!   metrics of the paper's §V-B) have close fingerprints, so a bucketed
//!   index over the leading feature prunes far candidates safely.
//!
//! The kernels are deliberately *features*, not a metric: the library
//! layer assembles them into a feature vector and ranks candidates by
//! feature distance, then re-scores the short list with the exact
//! similarity function.

use crate::mat::Mat;

/// Magnitudes of the normalized trace moments `|Tr(Uᵏ)|/d` for
/// `k = 1..=k_max`.
///
/// `Tr(Uᵏ) = Σ λᵢᵏ` is a symmetric function of the eigenvalues, so the
/// moments are invariant under basis permutation, and the magnitude
/// discards the global phase (`U → e^{iθ}U` scales `Tr(Uᵏ)` by
/// `e^{ikθ}`). The first moment is exactly the trace-overlap similarity
/// against the identity — the quantity the paper's best similarity
/// function (`fidelity1`) is built from.
///
/// # Panics
///
/// Panics when `u` is not square or `k_max == 0`.
///
/// # Examples
///
/// ```
/// use accqoc_linalg::{trace_moments_abs, Mat};
///
/// let id = Mat::identity(4);
/// assert_eq!(trace_moments_abs(&id, 3), vec![1.0, 1.0, 1.0]);
/// let x = Mat::from_reals(&[0.0, 1.0, 1.0, 0.0]);
/// let m = trace_moments_abs(&x, 2);
/// assert!(m[0] < 1e-12); // Tr(X) = 0
/// assert!((m[1] - 1.0).abs() < 1e-12); // Tr(X²) = Tr(I) = 2
/// ```
pub fn trace_moments_abs(u: &Mat, k_max: usize) -> Vec<f64> {
    assert!(u.is_square(), "trace moments need a square matrix");
    assert!(k_max >= 1, "need at least one moment");
    let d = u.rows() as f64;
    let mut out = Vec::with_capacity(k_max);
    out.push(u.trace().abs() / d);
    if k_max == 1 {
        return out;
    }
    // Power iteration with two ping-pong buffers: power holds Uᵏ.
    let mut power = u.clone();
    let mut next = Mat::zeros(u.rows(), u.cols());
    for _ in 2..=k_max {
        power.matmul_into(u, &mut next);
        std::mem::swap(&mut power, &mut next);
        out.push(power.trace().abs() / d);
    }
    out
}

/// Sorted (descending) magnitudes of the diagonal entries `|uᵢᵢ|`.
///
/// For a unitary, `|uᵢᵢ|` measures how much basis state `i` maps back to
/// itself; the sorted profile is invariant under global phase and under
/// simultaneous row/column permutations (the canonicalization the pulse
/// cache applies to group unitaries).
///
/// # Panics
///
/// Panics when `u` is not square.
pub fn diag_abs_profile(u: &Mat) -> Vec<f64> {
    assert!(u.is_square(), "diagonal profile needs a square matrix");
    let n = u.rows();
    let mut out: Vec<f64> = (0..n).map(|i| u[(i, i)].abs()).collect();
    out.sort_by(|a, b| b.total_cmp(a));
    out
}

/// Sorted (descending) peak magnitudes `maxⱼ |uᵢⱼ|` of each row.
///
/// Every row of a unitary has L2 norm exactly 1, so the L2 row-norm
/// profile carries no information; the *peak* magnitude does — it is 1
/// for permutation-like rows and `1/√d` for maximally spread rows, so
/// the sorted profile separates sparse gates (CX, diagonal phases) from
/// mixing gates (H-dressed groups). Invariant under global phase and
/// basis permutation.
///
/// # Panics
///
/// Panics when `u` has no rows.
pub fn row_peak_profile(u: &Mat) -> Vec<f64> {
    assert!(u.rows() > 0, "row profile needs a non-empty matrix");
    let mut out: Vec<f64> = (0..u.rows())
        .map(|i| u.row(i).iter().map(|c| c.abs()).fold(0.0f64, f64::max))
        .collect();
    out.sort_by(|a, b| b.total_cmp(a));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::C64;

    fn phase(u: &Mat, theta: f64) -> Mat {
        u.scale(C64::cis(theta))
    }

    #[test]
    fn moments_are_phase_invariant() {
        let h = Mat::from_reals(&[1.0, 1.0, 1.0, -1.0]).scale_re(std::f64::consts::FRAC_1_SQRT_2);
        let a = trace_moments_abs(&h, 4);
        let b = trace_moments_abs(&phase(&h, 1.7), 4);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
    }

    #[test]
    fn profiles_are_phase_and_permutation_invariant() {
        let u = Mat::from_reals(&[0.0, 1.0, 1.0, 0.0]);
        assert_eq!(diag_abs_profile(&u), diag_abs_profile(&phase(&u, 0.9)));
        assert_eq!(row_peak_profile(&u), row_peak_profile(&phase(&u, 0.9)));
        // Swap the basis: profiles unchanged.
        let swapped = u.permute_basis(&[1, 0]);
        assert_eq!(diag_abs_profile(&u), diag_abs_profile(&swapped));
        assert_eq!(row_peak_profile(&u), row_peak_profile(&swapped));
    }

    #[test]
    fn profiles_separate_sparse_from_mixing() {
        let id = Mat::identity(2);
        let h = Mat::from_reals(&[1.0, 1.0, 1.0, -1.0]).scale_re(std::f64::consts::FRAC_1_SQRT_2);
        assert_eq!(row_peak_profile(&id), vec![1.0, 1.0]);
        let hp = row_peak_profile(&h);
        assert!((hp[0] - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!(diag_abs_profile(&id)[0] > diag_abs_profile(&h)[0]);
    }

    #[test]
    fn moment_count_matches_request() {
        let u = Mat::identity(3);
        assert_eq!(trace_moments_abs(&u, 1).len(), 1);
        assert_eq!(trace_moments_abs(&u, 5).len(), 5);
    }
}
