//! Matrix square roots.
//!
//! Two routes are provided:
//!
//! - [`sqrtm_psd`] — exact spectral square root for positive semidefinite
//!   Hermitian matrices (the case needed by the Uhlmann-fidelity similarity
//!   function `d₄` of the paper, §V-B).
//! - [`sqrtm_db`] — the Denman–Beavers iteration for general matrices with
//!   no eigenvalues on the closed negative real axis; used as an
//!   independent cross-check and for non-Hermitian experiments.

use crate::eig::eigh;
use crate::lu::inverse;
use crate::mat::Mat;
use crate::LinalgError;

/// Spectral square root of a positive semidefinite Hermitian matrix.
///
/// Eigenvalues in `[-tol, 0)` are clamped to zero (numerical noise from
/// upstream products); anything more negative is rejected.
///
/// # Errors
///
/// - [`LinalgError::NotPsd`] if an eigenvalue is below `-1e-9·‖A‖`.
/// - Propagates [`eigh`] errors on non-Hermitian or malformed input.
///
/// # Examples
///
/// ```
/// use accqoc_linalg::{sqrtm_psd, Mat};
///
/// let a = Mat::from_reals(&[4.0, 0.0, 0.0, 9.0]);
/// let r = sqrtm_psd(&a)?;
/// assert!(r.matmul(&r).approx_eq(&a, 1e-12));
/// # Ok::<(), accqoc_linalg::LinalgError>(())
/// ```
pub fn sqrtm_psd(a: &Mat) -> Result<Mat, LinalgError> {
    let eig = eigh(a)?;
    let scale = a.max_abs().max(1.0);
    let tol = 1e-9 * scale;
    for &l in &eig.values {
        if l < -tol {
            return Err(LinalgError::NotPsd { eigenvalue: l });
        }
    }
    let n = a.rows();
    let mut scaled = eig.vectors.clone();
    for j in 0..n {
        let r = eig.values[j].max(0.0).sqrt();
        for i in 0..n {
            scaled[(i, j)] = scaled[(i, j)].scale(r);
        }
    }
    Ok(scaled.matmul(&eig.vectors.dagger()))
}

/// Maximum Denman–Beavers iterations.
const DB_MAX_ITERS: usize = 100;

/// Denman–Beavers iteration for the principal matrix square root.
///
/// Converges quadratically for matrices whose spectrum avoids the closed
/// negative real axis. Iteration:
/// `Y ← (Y + Z⁻¹)/2`, `Z ← (Z + Y⁻¹)/2` with `Y₀ = A`, `Z₀ = I`;
/// `Y → √A`, `Z → √A⁻¹`.
///
/// # Errors
///
/// - [`LinalgError::NoConvergence`] if the iteration stalls (e.g. spectrum
///   touching the negative real axis).
/// - Propagates inversion errors for singular iterates.
///
/// # Examples
///
/// ```
/// use accqoc_linalg::{sqrtm_db, Mat};
///
/// let a = Mat::from_reals(&[33.0, 24.0, 48.0, 57.0]);
/// let r = sqrtm_db(&a)?;
/// assert!(r.matmul(&r).approx_eq(&a, 1e-9));
/// # Ok::<(), accqoc_linalg::LinalgError>(())
/// ```
pub fn sqrtm_db(a: &Mat) -> Result<Mat, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    if !a.is_finite() {
        return Err(LinalgError::NonFinite);
    }
    let n = a.rows();
    let mut y = a.clone();
    let mut z = Mat::identity(n);
    let scale = a.max_abs().max(1.0);
    let tol = 1e-13 * scale;

    let mut last_residual = f64::INFINITY;
    for _ in 0..DB_MAX_ITERS {
        let y_inv = inverse(&y)?;
        let z_inv = inverse(&z)?;
        let y_next = (&y + &z_inv).scale_re(0.5);
        let z_next = (&z + &y_inv).scale_re(0.5);
        let residual = y_next.max_abs_diff(&y);
        y = y_next;
        z = z_next;
        if residual <= tol {
            return Ok(y);
        }
        if !y.is_finite() || residual > 1e6 * scale {
            break;
        }
        last_residual = residual.min(last_residual);
    }
    // Accept a slightly looser stall if the square actually checks out.
    if y.is_finite() && y.matmul(&y).max_abs_diff(a) <= 1e-8 * scale {
        return Ok(y);
    }
    Err(LinalgError::NoConvergence {
        what: "denman-beavers sqrtm",
        iters: DB_MAX_ITERS,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::C64;

    fn psd_from_factor(n: usize) -> Mat {
        let g = Mat::from_fn(n, n, |i, j| {
            C64::new(
                ((i * 13 + j * 5) % 7) as f64 / 7.0 - 0.4,
                ((i * 3 + j * 11) % 5) as f64 / 5.0 - 0.4,
            )
        });
        g.dagger_matmul(&g) // G†G is PSD
    }

    #[test]
    fn psd_sqrt_squares_back() {
        for n in [2, 4, 8] {
            let a = psd_from_factor(n);
            let r = sqrtm_psd(&a).unwrap();
            assert!(r.matmul(&r).approx_eq(&a, 1e-9), "n={n}");
            assert!(r.is_hermitian(1e-9));
        }
    }

    #[test]
    fn psd_sqrt_of_identity() {
        let r = sqrtm_psd(&Mat::identity(4)).unwrap();
        assert!(r.approx_eq(&Mat::identity(4), 1e-12));
    }

    #[test]
    fn psd_rejects_negative_definite() {
        let a = Mat::identity(3).scale_re(-1.0);
        assert!(matches!(sqrtm_psd(&a), Err(LinalgError::NotPsd { .. })));
    }

    #[test]
    fn psd_clamps_tiny_negative_noise() {
        let mut a = psd_from_factor(3);
        // Inject ~1e-12 negative perturbation on the diagonal.
        for i in 0..3 {
            a[(i, i)] -= C64::real(1e-12);
        }
        let r = sqrtm_psd(&a).unwrap();
        assert!(r.matmul(&r).approx_eq(&a, 1e-8));
    }

    #[test]
    fn db_matches_psd_route() {
        let a = {
            // Positive definite (shift away from zero so DB is comfortable).
            let mut m = psd_from_factor(4);
            for i in 0..4 {
                m[(i, i)] += C64::real(0.5);
            }
            m
        };
        let r1 = sqrtm_psd(&a).unwrap();
        let r2 = sqrtm_db(&a).unwrap();
        assert!(r1.approx_eq(&r2, 1e-8), "diff {}", r1.max_abs_diff(&r2));
    }

    #[test]
    fn db_on_non_hermitian() {
        // Upper triangular with positive eigenvalues (diagonal).
        let a = Mat::from_reals(&[4.0, 1.0, 0.0, 9.0]);
        let r = sqrtm_db(&a).unwrap();
        assert!(r.matmul(&r).approx_eq(&a, 1e-9));
    }

    #[test]
    fn db_rejects_non_square() {
        assert!(matches!(
            sqrtm_db(&Mat::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn db_fails_gracefully_on_negative_spectrum() {
        // −I has spectrum on the negative real axis: no real principal root.
        let a = Mat::identity(2).scale_re(-1.0);
        assert!(sqrtm_db(&a).is_err());
    }
}
