//! Register-blocked complex matmul microkernels — bit-identical by
//! construction to the naive loops they replaced.
//!
//! # Why this layer exists
//!
//! All GRAPE serving cost bottoms out in the dense complex products of
//! `cost_and_gradient`: forward/backward propagation (`A·B`), eigenbasis
//! rotations (`A†·B`, then `·V`), and the spectral propagator (`A·B†`).
//! The original [`crate::Mat`] kernels were naive triple loops that
//! stream every accumulator through memory; the kernels here hold a
//! 2×4 tile of output accumulators in locals so the inner loop runs on
//! registers, touching memory once per operand element and once per
//! output element.
//!
//! # The bit-exactness contract (why the k-order is sacred)
//!
//! Several CI gates pin **byte-identical pulses** (golden corpus,
//! `library_serve --check`, `server --check`, `restart --check`): any
//! change to the floating-point result of these kernels — even in the
//! last ulp — re-times pulses across the entire serving stack and trips
//! the gates. IEEE-754 arithmetic is deterministic, so the kernels stay
//! byte-identical by preserving, for every output element, the **exact
//! FLOP sequence** of the naive loop:
//!
//! - the accumulator starts at `+0.0 + 0.0i`,
//! - the `k` (inner-dimension) accumulation runs innermost, in ascending
//!   order, and
//! - each contribution is the same [`C64::mul_add`] call (itself a fixed
//!   chain of scalar `mul`/`add`s, no hardware FMA).
//!
//! Register blocking only interleaves *independent* per-element chains
//! across the 8 accumulators of a tile; it never reassociates within a
//! chain. Tiling the output is free; tiling `k` would not be.
//!
//! # The dropped `aik == ZERO` skip branch
//!
//! The old `matmul` inner loop skipped rows of `B` when the `A` entry was
//! exactly zero — a branch per inner iteration that buys nothing on the
//! dense matrices of the GRAPE hot path. The dense kernels here drop it.
//! For **finite** operands this is still bit-exact: a `±0` entry of `A`
//! contributes `±0`-valued products, and under round-to-nearest a `+0.0`
//! accumulator stays `+0.0` when `±0.0` is added to it (`(+0) + (−0) =
//! +0`), while a nonzero accumulator is unchanged by `±0` exactly. Since
//! every per-element chain starts at `+0.0`, the dense sum equals the
//! skipping sum bit-for-bit. The behaviours differ only on non-finite
//! input: the skip branch suppressed `0·∞ = NaN`, the dense kernels
//! propagate NaN/∞ like every other BLAS. GRAPE matrices are finite by
//! construction (checked at the eigensolver and exponential entry
//! points). The allocating [`crate::Mat::matmul`] keeps the sparse-aware
//! skip: it serves the Padé `expm` chains and Kronecker assembly where
//! operands genuinely carry structural zeros.
//!
//! The [`mod@reference`] module preserves the pre-kernel naive loops
//! verbatim; the bit-identity test-suite and the `grape_kernels` bench
//! harness compare against them.

use crate::complex::{C64, ZERO};

/// Output-tile height (rows of accumulators held in locals).
pub const TILE_ROWS: usize = 2;
/// Output-tile width (columns of accumulators held in locals).
pub const TILE_COLS: usize = 4;

#[inline]
fn check_dims(a: &[C64], b: &[C64], out: &mut [C64], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
}

/// Dense `C = A·B` for row-major `A (m×k)`, `B (k×n)`, `C (m×n)`.
///
/// `out` is fully overwritten. Bit-identical to the naive
/// [`reference::matmul`] on finite input (see the module docs for the
/// signed-zero argument covering the dropped skip branch).
pub fn matmul(a: &[C64], b: &[C64], out: &mut [C64], m: usize, k: usize, n: usize) {
    check_dims(a, b, out, m, k, n);
    let mut i = 0;
    while i + TILE_ROWS <= m {
        let (ar0, ar1) = (&a[i * k..(i + 1) * k], &a[(i + 1) * k..(i + 2) * k]);
        let mut j = 0;
        while j + TILE_COLS <= n {
            let mut c0 = [ZERO; TILE_COLS];
            let mut c1 = [ZERO; TILE_COLS];
            for p in 0..k {
                let (a0, a1) = (ar0[p], ar1[p]);
                let br: &[C64; TILE_COLS] = b[p * n + j..p * n + j + TILE_COLS]
                    .try_into()
                    .expect("tile");
                for t in 0..TILE_COLS {
                    c0[t] = a0.mul_add(br[t], c0[t]);
                    c1[t] = a1.mul_add(br[t], c1[t]);
                }
            }
            out[i * n + j..i * n + j + TILE_COLS].copy_from_slice(&c0);
            out[(i + 1) * n + j..(i + 1) * n + j + TILE_COLS].copy_from_slice(&c1);
            j += TILE_COLS;
        }
        while j < n {
            let (mut c0, mut c1) = (ZERO, ZERO);
            for p in 0..k {
                let bpj = b[p * n + j];
                c0 = ar0[p].mul_add(bpj, c0);
                c1 = ar1[p].mul_add(bpj, c1);
            }
            out[i * n + j] = c0;
            out[(i + 1) * n + j] = c1;
            j += 1;
        }
        i += TILE_ROWS;
    }
    if i < m {
        let ar = &a[i * k..(i + 1) * k];
        let mut j = 0;
        while j + TILE_COLS <= n {
            let mut c = [ZERO; TILE_COLS];
            for p in 0..k {
                let a0 = ar[p];
                let br: &[C64; TILE_COLS] = b[p * n + j..p * n + j + TILE_COLS]
                    .try_into()
                    .expect("tile");
                for t in 0..TILE_COLS {
                    c[t] = a0.mul_add(br[t], c[t]);
                }
            }
            out[i * n + j..i * n + j + TILE_COLS].copy_from_slice(&c);
            j += TILE_COLS;
        }
        while j < n {
            let mut c = ZERO;
            for p in 0..k {
                c = ar[p].mul_add(b[p * n + j], c);
            }
            out[i * n + j] = c;
            j += 1;
        }
    }
}

/// Dense `C = A†·B` for row-major `A (r×m)`, `B (r×n)`, `C (m×n)` —
/// the dagger is never materialized.
///
/// Per output element the chain is `acc = conj(A[p,i])·B[p,j] + acc`
/// over ascending `p`, exactly as in [`reference::dagger_matmul`].
pub fn dagger_matmul(a: &[C64], b: &[C64], out: &mut [C64], r: usize, m: usize, n: usize) {
    debug_assert_eq!(a.len(), r * m);
    debug_assert_eq!(b.len(), r * n);
    debug_assert_eq!(out.len(), m * n);
    let mut i = 0;
    while i + TILE_ROWS <= m {
        let mut j = 0;
        while j + TILE_COLS <= n {
            let (mut c00, mut c01, mut c02, mut c03) = (ZERO, ZERO, ZERO, ZERO);
            let (mut c10, mut c11, mut c12, mut c13) = (ZERO, ZERO, ZERO, ZERO);
            for p in 0..r {
                let a0 = a[p * m + i].conj();
                let a1 = a[p * m + i + 1].conj();
                let br = &b[p * n + j..p * n + j + TILE_COLS];
                c00 = a0.mul_add(br[0], c00);
                c01 = a0.mul_add(br[1], c01);
                c02 = a0.mul_add(br[2], c02);
                c03 = a0.mul_add(br[3], c03);
                c10 = a1.mul_add(br[0], c10);
                c11 = a1.mul_add(br[1], c11);
                c12 = a1.mul_add(br[2], c12);
                c13 = a1.mul_add(br[3], c13);
            }
            out[i * n + j] = c00;
            out[i * n + j + 1] = c01;
            out[i * n + j + 2] = c02;
            out[i * n + j + 3] = c03;
            out[(i + 1) * n + j] = c10;
            out[(i + 1) * n + j + 1] = c11;
            out[(i + 1) * n + j + 2] = c12;
            out[(i + 1) * n + j + 3] = c13;
            j += TILE_COLS;
        }
        while j < n {
            let (mut c0, mut c1) = (ZERO, ZERO);
            for p in 0..r {
                let bpj = b[p * n + j];
                c0 = a[p * m + i].conj().mul_add(bpj, c0);
                c1 = a[p * m + i + 1].conj().mul_add(bpj, c1);
            }
            out[i * n + j] = c0;
            out[(i + 1) * n + j] = c1;
            j += 1;
        }
        i += TILE_ROWS;
    }
    if i < m {
        let mut j = 0;
        while j + TILE_COLS <= n {
            let (mut c0, mut c1, mut c2, mut c3) = (ZERO, ZERO, ZERO, ZERO);
            for p in 0..r {
                let a0 = a[p * m + i].conj();
                let br = &b[p * n + j..p * n + j + TILE_COLS];
                c0 = a0.mul_add(br[0], c0);
                c1 = a0.mul_add(br[1], c1);
                c2 = a0.mul_add(br[2], c2);
                c3 = a0.mul_add(br[3], c3);
            }
            out[i * n + j] = c0;
            out[i * n + j + 1] = c1;
            out[i * n + j + 2] = c2;
            out[i * n + j + 3] = c3;
            j += TILE_COLS;
        }
        while j < n {
            let mut c = ZERO;
            for p in 0..r {
                c = a[p * m + i].conj().mul_add(b[p * n + j], c);
            }
            out[i * n + j] = c;
            j += 1;
        }
    }
}

/// Dense `C = A·B†` for row-major `A (m×k)`, `B (n×k)`, `C (m×n)` —
/// the dagger is never materialized.
///
/// Per output element the chain is `acc = A[i,p]·conj(B[j,p]) + acc`
/// over ascending `p`, exactly as in [`reference::matmul_dagger`].
pub fn matmul_dagger(a: &[C64], b: &[C64], out: &mut [C64], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    let mut i = 0;
    while i + TILE_ROWS <= m {
        let (ar0, ar1) = (&a[i * k..(i + 1) * k], &a[(i + 1) * k..(i + 2) * k]);
        let mut j = 0;
        while j + TILE_COLS <= n {
            let (mut c00, mut c01, mut c02, mut c03) = (ZERO, ZERO, ZERO, ZERO);
            let (mut c10, mut c11, mut c12, mut c13) = (ZERO, ZERO, ZERO, ZERO);
            let br0 = &b[j * k..(j + 1) * k];
            let br1 = &b[(j + 1) * k..(j + 2) * k];
            let br2 = &b[(j + 2) * k..(j + 3) * k];
            let br3 = &b[(j + 3) * k..(j + 4) * k];
            for p in 0..k {
                let (a0, a1) = (ar0[p], ar1[p]);
                let (b0, b1, b2, b3) = (br0[p].conj(), br1[p].conj(), br2[p].conj(), br3[p].conj());
                c00 = a0.mul_add(b0, c00);
                c01 = a0.mul_add(b1, c01);
                c02 = a0.mul_add(b2, c02);
                c03 = a0.mul_add(b3, c03);
                c10 = a1.mul_add(b0, c10);
                c11 = a1.mul_add(b1, c11);
                c12 = a1.mul_add(b2, c12);
                c13 = a1.mul_add(b3, c13);
            }
            out[i * n + j] = c00;
            out[i * n + j + 1] = c01;
            out[i * n + j + 2] = c02;
            out[i * n + j + 3] = c03;
            out[(i + 1) * n + j] = c10;
            out[(i + 1) * n + j + 1] = c11;
            out[(i + 1) * n + j + 2] = c12;
            out[(i + 1) * n + j + 3] = c13;
            j += TILE_COLS;
        }
        while j < n {
            let br = &b[j * k..(j + 1) * k];
            let (mut c0, mut c1) = (ZERO, ZERO);
            for p in 0..k {
                let bj = br[p].conj();
                c0 = ar0[p].mul_add(bj, c0);
                c1 = ar1[p].mul_add(bj, c1);
            }
            out[i * n + j] = c0;
            out[(i + 1) * n + j] = c1;
            j += 1;
        }
        i += TILE_ROWS;
    }
    if i < m {
        let ar = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let br = &b[j * k..(j + 1) * k];
            let mut c = ZERO;
            for p in 0..k {
                c = ar[p].mul_add(br[p].conj(), c);
            }
            out[i * n + j] = c;
        }
    }
}

/// `Tr(A·B)` without forming the product: `Σ_{a,b} A[a,b]·B[b,a]` for
/// row-major `A (m×n)`, `B (n×m)`.
///
/// **Deliberately not blocked.** Unlike the matmul kernels, whose output
/// elements are independent chains, the trace is a *single* accumulator:
/// any tiling or partial-sum split reassociates the global sum and moves
/// bits. The chain — row-major over `A`, `tr += a·b` (mul then add, not
/// `mul_add`) — is pinned by the golden-pulse CI gates.
pub fn trace_of_product(a: &[C64], b: &[C64], m: usize, n: usize) -> C64 {
    debug_assert_eq!(a.len(), m * n);
    debug_assert_eq!(b.len(), n * m);
    let mut tr = ZERO;
    for i in 0..m {
        let arow = &a[i * n..(i + 1) * n];
        for (j, &aij) in arow.iter().enumerate() {
            tr += aij * b[j * m + i];
        }
    }
    tr
}

/// Fused eigenbasis rotation `C = V†·M·V` for square row-major `n×n`
/// operands, with one caller-owned intermediate (`scratch = V†·M`).
///
/// Composes the two blocked kernels above, so it is bit-identical to the
/// unfused two-call sequence (`dagger_matmul` then `matmul`) — the
/// fusion saves the second output round-trip through a `Mat` resize and
/// keeps both passes on the same hot scratch, not FLOPs. A deeper
/// algebraic fusion (contracting `V†·M·V` in one pass) would reassociate
/// the element chains and is forbidden by the byte-identity gates.
pub fn rotate(v: &[C64], m: &[C64], scratch: &mut [C64], out: &mut [C64], n: usize) {
    debug_assert_eq!(v.len(), n * n);
    debug_assert_eq!(m.len(), n * n);
    debug_assert_eq!(scratch.len(), n * n);
    debug_assert_eq!(out.len(), n * n);
    dagger_matmul(v, m, scratch, n, n, n);
    matmul(scratch, v, out, n, n, n);
}

/// The pre-kernel naive loops, preserved verbatim.
///
/// These are the FLOP-sequence ground truth the blocked kernels must
/// reproduce bit-for-bit: the proptest suite asserts exact `==` between
/// each blocked kernel and its reference over random shapes, and the
/// `grape_kernels` bench harness times both paths to report the speedup.
pub mod reference {
    use super::*;

    /// Naive `C = A·B` with the historical `aik == ZERO` skip branch and
    /// memory-resident accumulators (the pre-kernel `Mat::matmul_into`
    /// inner loop).
    pub fn matmul(a: &[C64], b: &[C64], out: &mut [C64], m: usize, k: usize, n: usize) {
        check_dims(a, b, out, m, k, n);
        out.fill(ZERO);
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (p, &aik) in arow.iter().enumerate() {
                if aik == ZERO {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (o, &bkj) in orow.iter_mut().zip(brow) {
                    *o = aik.mul_add(bkj, *o);
                }
            }
        }
    }

    /// Naive `C = A†·B` (the pre-kernel `Mat::dagger_matmul_into` inner
    /// loop: `k` outermost, accumulators in memory).
    pub fn dagger_matmul(a: &[C64], b: &[C64], out: &mut [C64], r: usize, m: usize, n: usize) {
        debug_assert_eq!(a.len(), r * m);
        debug_assert_eq!(b.len(), r * n);
        debug_assert_eq!(out.len(), m * n);
        out.fill(ZERO);
        for p in 0..r {
            let arow = &a[p * m..(p + 1) * m];
            let brow = &b[p * n..(p + 1) * n];
            for (i, &api) in arow.iter().enumerate() {
                let ac = api.conj();
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bpj) in orow.iter_mut().zip(brow) {
                    *o = ac.mul_add(bpj, *o);
                }
            }
        }
    }

    /// Naive `C = A·B†` (the pre-kernel `Mat::matmul_dagger_into` inner
    /// loop: local scalar accumulator, no blocking).
    pub fn matmul_dagger(a: &[C64], b: &[C64], out: &mut [C64], m: usize, k: usize, n: usize) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), n * k);
        debug_assert_eq!(out.len(), m * n);
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = ZERO;
                for (&aip, &bjp) in arow.iter().zip(brow) {
                    acc = aip.mul_add(bjp.conj(), acc);
                }
                out[i * n + j] = acc;
            }
        }
    }

    /// Unfused `C = V†·M·V`: the pre-kernel two-call sequence.
    pub fn rotate(v: &[C64], m: &[C64], scratch: &mut [C64], out: &mut [C64], n: usize) {
        dagger_matmul(v, m, scratch, n, n, n);
        matmul(scratch, v, out, n, n, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic dense test matrix with irrational-ish entries.
    fn fill(m: usize, n: usize, salt: u64) -> Vec<C64> {
        (0..m * n)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(salt);
                let re = ((x >> 11) % 10_000) as f64 / 5_000.0 - 1.0;
                let im = ((x >> 31) % 10_000) as f64 / 5_000.0 - 1.0;
                C64::new(re, im)
            })
            .collect()
    }

    fn bits(v: &[C64]) -> Vec<(u64, u64)> {
        v.iter().map(|z| (z.re.to_bits(), z.im.to_bits())).collect()
    }

    #[test]
    fn blocked_matmul_matches_reference_bits_all_small_shapes() {
        for m in 1..=6 {
            for k in 1..=6 {
                for n in 1..=6 {
                    let a = fill(m, k, 1);
                    let b = fill(k, n, 2);
                    let mut got = vec![ZERO; m * n];
                    let mut want = vec![ZERO; m * n];
                    matmul(&a, &b, &mut got, m, k, n);
                    reference::matmul(&a, &b, &mut want, m, k, n);
                    assert_eq!(bits(&got), bits(&want), "matmul {m}x{k}x{n}");
                }
            }
        }
    }

    #[test]
    fn blocked_dagger_matmul_matches_reference_bits() {
        for r in [1, 2, 3, 5, 8, 9] {
            for m in [1, 2, 4, 7] {
                for n in [1, 3, 4, 6] {
                    let a = fill(r, m, 3);
                    let b = fill(r, n, 4);
                    let mut got = vec![ZERO; m * n];
                    let mut want = vec![ZERO; m * n];
                    dagger_matmul(&a, &b, &mut got, r, m, n);
                    reference::dagger_matmul(&a, &b, &mut want, r, m, n);
                    assert_eq!(bits(&got), bits(&want), "dagger_matmul {r}x{m}x{n}");
                }
            }
        }
    }

    #[test]
    fn blocked_matmul_dagger_matches_reference_bits() {
        for m in [1, 2, 3, 5, 8] {
            for k in [1, 2, 4, 9] {
                for n in [1, 2, 5, 8] {
                    let a = fill(m, k, 5);
                    let b = fill(n, k, 6);
                    let mut got = vec![ZERO; m * n];
                    let mut want = vec![ZERO; m * n];
                    matmul_dagger(&a, &b, &mut got, m, k, n);
                    reference::matmul_dagger(&a, &b, &mut want, m, k, n);
                    assert_eq!(bits(&got), bits(&want), "matmul_dagger {m}x{k}x{n}");
                }
            }
        }
    }

    #[test]
    fn dense_matmul_matches_skipping_reference_on_sparse_input() {
        // The signed-zero argument from the module docs, exercised: exact
        // +0 and −0 entries in A must not move output bits vs the
        // skip-branch reference.
        for n in [2usize, 3, 8] {
            let mut a = fill(n, n, 7);
            for (i, z) in a.iter_mut().enumerate() {
                match i % 4 {
                    0 => *z = ZERO,
                    1 => *z = C64::new(-0.0, 0.0),
                    2 => *z = C64::new(0.0, -0.0),
                    _ => {}
                }
            }
            let b = fill(n, n, 8);
            let mut got = vec![ZERO; n * n];
            let mut want = vec![ZERO; n * n];
            matmul(&a, &b, &mut got, n, n, n);
            reference::matmul(&a, &b, &mut want, n, n, n);
            assert_eq!(bits(&got), bits(&want), "sparse matmul n={n}");
        }
    }

    #[test]
    fn rotate_matches_unfused_reference_bits() {
        for n in [1usize, 2, 4, 5, 8, 11] {
            let v = fill(n, n, 9);
            let m = fill(n, n, 10);
            let mut s1 = vec![ZERO; n * n];
            let mut s2 = vec![ZERO; n * n];
            let mut got = vec![ZERO; n * n];
            let mut want = vec![ZERO; n * n];
            rotate(&v, &m, &mut s1, &mut got, n);
            reference::rotate(&v, &m, &mut s2, &mut want, n);
            assert_eq!(bits(&got), bits(&want), "rotate n={n}");
        }
    }

    #[test]
    fn trace_of_product_matches_mat_trace_order() {
        let a = fill(5, 5, 11);
        let b = fill(5, 5, 12);
        // Replay the exact historical chain.
        let mut want = ZERO;
        for i in 0..5 {
            for j in 0..5 {
                want += a[i * 5 + j] * b[j * 5 + i];
            }
        }
        let got = trace_of_product(&a, &b, 5, 5);
        assert_eq!(
            (got.re.to_bits(), got.im.to_bits()),
            (want.re.to_bits(), want.im.to_bits())
        );
    }
}
