//! Dense, row-major complex matrices.
//!
//! All AccQOC matrices are small (a group of `q` qubits is `2^q × 2^q`
//! with `q ≤ 5`), so a dense representation is the right tool. The hot
//! `*_into` products dispatch to the register-blocked microkernels of
//! [`crate::kernels`], which are bit-identical to the naive loops they
//! replaced (the byte-identity CI gates pin every ulp of the serving
//! stack's pulses).

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

use crate::complex::{C64, ONE, ZERO};

/// A dense complex matrix stored in row-major order.
///
/// # Examples
///
/// ```
/// use accqoc_linalg::{Mat, C64};
///
/// let x = Mat::from_rows(&[
///     &[C64::real(0.0), C64::real(1.0)],
///     &[C64::real(1.0), C64::real(0.0)],
/// ]);
/// assert!(x.is_unitary(1e-12));
/// assert_eq!(&x * &x, Mat::identity(2));
/// ```
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl Mat {
    /// Creates an `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = ONE;
        }
        m
    }

    /// Builds a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> C64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[C64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows: no rows given");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a square matrix from a flat row-major slice of real numbers.
    ///
    /// # Panics
    ///
    /// Panics if `vals.len()` is not a perfect square.
    pub fn from_reals(vals: &[f64]) -> Self {
        let n = (vals.len() as f64).sqrt().round() as usize;
        assert_eq!(
            n * n,
            vals.len(),
            "from_reals: length {} is not square",
            vals.len()
        );
        Self {
            rows: n,
            cols: n,
            data: vals.iter().map(|&v| C64::real(v)).collect(),
        }
    }

    /// Builds a square matrix from a flat row-major slice of complex values.
    ///
    /// # Panics
    ///
    /// Panics if `vals.len()` is not a perfect square.
    pub fn from_flat(vals: &[C64]) -> Self {
        let n = (vals.len() as f64).sqrt().round() as usize;
        assert_eq!(
            n * n,
            vals.len(),
            "from_flat: length {} is not square",
            vals.len()
        );
        Self {
            rows: n,
            cols: n,
            data: vals.to_vec(),
        }
    }

    /// Builds a diagonal matrix from the given diagonal entries.
    pub fn diag(entries: &[C64]) -> Self {
        let n = entries.len();
        let mut m = Self::zeros(n, n);
        for (i, &e) in entries.iter().enumerate() {
            m[(i, i)] = e;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Flat row-major view of the entries.
    #[inline]
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Mutable flat row-major view of the entries.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Borrows row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[C64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Conjugate transpose `A†`.
    pub fn dagger(&self) -> Mat {
        Mat::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Transpose without conjugation.
    pub fn transpose(&self) -> Mat {
        Mat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Entry-wise complex conjugate.
    pub fn conj(&self) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Trace `Σᵢ aᵢᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> C64 {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm `√(Σ |aᵢⱼ|²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Induced 1-norm (maximum absolute column sum). Used to pick the
    /// scaling power in [`crate::expm`].
    pub fn one_norm(&self) -> f64 {
        (0..self.cols)
            .map(|j| (0..self.rows).map(|i| self[(i, j)].abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Largest entry modulus.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Sum of entry-modulus differences `Σ |aᵢⱼ − bᵢⱼ|` (the paper's `d₁`
    /// similarity distance).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn l1_distance(&self, other: &Mat) -> f64 {
        self.check_same_shape(other, "l1_distance");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).abs())
            .sum()
    }

    /// Frobenius distance `√(Σ |aᵢⱼ − bᵢⱼ|²)` (the paper's `d₂`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn frobenius_distance(&self, other: &Mat) -> f64 {
        self.check_same_shape(other, "frobenius_distance");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    /// Maximum entry-wise modulus difference.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Mat) -> f64 {
        self.check_same_shape(other, "max_abs_diff");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
    }

    /// Approximate entry-wise equality within absolute tolerance `tol`.
    pub fn approx_eq(&self, other: &Mat, tol: f64) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.max_abs_diff(other) <= tol
    }

    /// Matrix product `A·B` (naive `O(n³)`, transpose-free inner loop over
    /// `B` rows for cache friendliness).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Mat) -> Mat {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} by {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Mat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &aik) in arow.iter().enumerate() {
                if aik == ZERO {
                    continue;
                }
                let brow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &bkj) in orow.iter_mut().zip(brow) {
                    *o = aik.mul_add(bkj, *o);
                }
            }
        }
        out
    }

    /// Matrix product `A·B` written into `out`, reusing its storage when
    /// the shape already matches (no allocation on the steady-state path —
    /// the GRAPE inner loop calls this thousands of times per solve).
    ///
    /// Dispatches to the register-blocked [`crate::kernels`] layer;
    /// bit-identical to the historical naive loop on finite input (see
    /// the kernel module docs for the signed-zero argument).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()` or `out` aliases an operand
    /// shape-incompatibly (the shape is reset to `self.rows × rhs.cols`).
    pub fn matmul_into(&self, rhs: &Mat, out: &mut Mat) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul_into: {}x{} by {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.reshape_zeros(self.rows, rhs.cols);
        crate::kernels::matmul(
            &self.data,
            &rhs.data,
            &mut out.data,
            self.rows,
            self.cols,
            rhs.cols,
        );
    }

    /// `A† · B` written into `out` without materializing the dagger or
    /// allocating (shape permitting). See [`Mat::matmul_into`].
    ///
    /// Dispatches to the register-blocked [`crate::kernels`] layer.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn dagger_matmul_into(&self, rhs: &Mat, out: &mut Mat) {
        assert_eq!(self.rows, rhs.rows, "dagger_matmul_into shape mismatch");
        out.reshape_zeros(self.cols, rhs.cols);
        crate::kernels::dagger_matmul(
            &self.data,
            &rhs.data,
            &mut out.data,
            self.rows,
            self.cols,
            rhs.cols,
        );
    }

    /// `A · B†` written into `out` without materializing the dagger or
    /// allocating (shape permitting).
    ///
    /// Dispatches to the register-blocked [`crate::kernels`] layer.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_dagger_into(&self, rhs: &Mat, out: &mut Mat) {
        assert_eq!(self.cols, rhs.cols, "matmul_dagger_into shape mismatch");
        out.reshape_zeros(self.rows, rhs.rows);
        crate::kernels::matmul_dagger(
            &self.data,
            &rhs.data,
            &mut out.data,
            self.rows,
            self.cols,
            rhs.rows,
        );
    }

    /// Fused eigenbasis rotation `self† · m · self` written into `out`
    /// through one caller-owned intermediate (`scratch = self†·m`).
    ///
    /// Bit-identical to the unfused
    /// [`dagger_matmul_into`](Mat::dagger_matmul_into) +
    /// [`matmul_into`](Mat::matmul_into) sequence; the GRAPE gradient
    /// rotates two matrices per slice per control through this call.
    ///
    /// # Panics
    ///
    /// Panics unless `self` and `m` are square with equal dimension.
    pub fn rotate_into(&self, m: &Mat, scratch: &mut Mat, out: &mut Mat) {
        assert!(self.is_square(), "rotate_into: basis not square");
        assert!(
            m.is_square() && m.rows == self.rows,
            "rotate_into: {}x{} operand in dimension-{} basis",
            m.rows,
            m.cols,
            self.rows
        );
        let n = self.rows;
        scratch.reshape_zeros(n, n);
        out.reshape_zeros(n, n);
        crate::kernels::rotate(&self.data, &m.data, &mut scratch.data, &mut out.data, n);
    }

    /// Conjugate transpose written into `out`, reusing its storage.
    pub fn dagger_into(&self, out: &mut Mat) {
        out.reshape_zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j].conj();
            }
        }
    }

    /// Resets this matrix to `rows × cols` zeros, reusing storage.
    pub fn reshape_zeros(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, ZERO);
    }

    /// Resets this matrix to the `n × n` identity, reusing storage.
    pub fn set_identity(&mut self, n: usize) {
        self.reshape_zeros(n, n);
        for i in 0..n {
            self.data[i * n + i] = ONE;
        }
    }

    /// Overwrites this matrix with a copy of `other`, reusing storage.
    pub fn copy_from(&mut self, other: &Mat) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// `Tr(A·B)` without forming the product: `Σ_{a,b} A[a,b]·B[b,a]`.
    ///
    /// # Panics
    ///
    /// Panics if `A·B` is not square (`self.rows() != rhs.cols()` or
    /// `self.cols() != rhs.rows()`).
    pub fn matmul_trace(&self, rhs: &Mat) -> C64 {
        assert_eq!(self.cols, rhs.rows, "matmul_trace inner dimension");
        assert_eq!(self.rows, rhs.cols, "matmul_trace: product not square");
        crate::kernels::trace_of_product(&self.data, &rhs.data, self.rows, self.cols)
    }

    /// `A† · B` without materializing the dagger.
    pub fn dagger_matmul(&self, rhs: &Mat) -> Mat {
        assert_eq!(self.rows, rhs.rows, "dagger_matmul shape mismatch");
        let mut out = Mat::zeros(self.cols, rhs.cols);
        for k in 0..self.rows {
            let arow = &self.data[k * self.cols..(k + 1) * self.cols];
            let brow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
            for (i, &aki) in arow.iter().enumerate() {
                let a = aki.conj();
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &bkj) in orow.iter_mut().zip(brow) {
                    *o = a.mul_add(bkj, *o);
                }
            }
        }
        out
    }

    /// Hilbert–Schmidt inner product `⟨A, B⟩ = Tr(A† B)`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hs_inner(&self, other: &Mat) -> C64 {
        self.check_same_shape(other, "hs_inner");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, k: C64) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| *z * k).collect(),
        }
    }

    /// Scales every entry by a real factor.
    pub fn scale_re(&self, k: f64) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.scale(k)).collect(),
        }
    }

    /// In-place `self += k · other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, k: C64, other: &Mat) {
        self.check_same_shape(other, "axpy");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a = k.mul_add(*b, *a);
        }
    }

    /// Kronecker (tensor) product `A ⊗ B`.
    pub fn kron(&self, other: &Mat) -> Mat {
        let mut out = Mat::zeros(self.rows * other.rows, self.cols * other.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                if a == ZERO {
                    continue;
                }
                for k in 0..other.rows {
                    for l in 0..other.cols {
                        out[(i * other.rows + k, j * other.cols + l)] = a * other[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// `true` if `A†A ≈ I` within tolerance `tol` (max-abs entry-wise).
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        self.dagger_matmul(self)
            .approx_eq(&Mat::identity(self.rows), tol)
    }

    /// `true` if `A ≈ A†` within tolerance `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.is_square() && self.approx_eq(&self.dagger(), tol)
    }

    /// `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|z| z.is_finite())
    }

    /// Conjugates by a basis permutation: returns `P A Pᵀ` where `P` is the
    /// permutation matrix sending basis index `i` to `perm[i]`.
    ///
    /// Used to canonicalize group unitaries up to qubit relabeling.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..n` for square `A`.
    pub fn permute_basis(&self, perm: &[usize]) -> Mat {
        assert!(self.is_square(), "permute_basis on non-square matrix");
        assert_eq!(perm.len(), self.rows, "permutation length mismatch");
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            assert!(p < perm.len() && !seen[p], "invalid permutation");
            seen[p] = true;
        }
        Mat::from_fn(self.rows, self.cols, |i, j| {
            // (P A Pᵀ)[perm[i], perm[j]] = A[i, j]  ⇒ out[i, j] = A[inv[i], inv[j]];
            // easier: build via scatter.
            let _ = (i, j);
            ZERO
        })
        .scatter_permuted(self, perm)
    }

    fn scatter_permuted(mut self, src: &Mat, perm: &[usize]) -> Mat {
        for i in 0..src.rows {
            for j in 0..src.cols {
                self[(perm[i], perm[j])] = src[(i, j)];
            }
        }
        self
    }

    fn check_same_shape(&self, other: &Mat, what: &str) {
        assert!(
            self.rows == other.rows && self.cols == other.cols,
            "{what}: shape mismatch {}x{} vs {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = C64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &C64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut C64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                let z = self[(i, j)];
                write!(f, "{:>7.3}{:+.3}i ", z.re, z.im)?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl Add for &Mat {
    type Output = Mat;
    fn add(self, rhs: &Mat) -> Mat {
        self.check_same_shape(rhs, "add");
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &Mat {
    type Output = Mat;
    fn sub(self, rhs: &Mat) -> Mat {
        self.check_same_shape(rhs, "sub");
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Mul for &Mat {
    type Output = Mat;
    fn mul(self, rhs: &Mat) -> Mat {
        self.matmul(rhs)
    }
}

impl Neg for &Mat {
    type Output = Mat;
    fn neg(self) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| -*z).collect(),
        }
    }
}

impl AddAssign<&Mat> for Mat {
    fn add_assign(&mut self, rhs: &Mat) {
        self.check_same_shape(rhs, "add_assign");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += *b;
        }
    }
}

impl SubAssign<&Mat> for Mat {
    fn sub_assign(&mut self, rhs: &Mat) {
        self.check_same_shape(rhs, "sub_assign");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= *b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::I;

    fn pauli_x() -> Mat {
        Mat::from_reals(&[0.0, 1.0, 1.0, 0.0])
    }

    fn pauli_y() -> Mat {
        Mat::from_flat(&[ZERO, -I, I, ZERO])
    }

    fn pauli_z() -> Mat {
        Mat::from_reals(&[1.0, 0.0, 0.0, -1.0])
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let x = pauli_x();
        let id = Mat::identity(2);
        assert_eq!(&x * &id, x);
        assert_eq!(&id * &x, x);
    }

    #[test]
    fn pauli_algebra() {
        let (x, y, z) = (pauli_x(), pauli_y(), pauli_z());
        // XY = iZ
        assert!((&x * &y).approx_eq(&z.scale(I), 1e-14));
        // X² = Y² = Z² = I
        for p in [&x, &y, &z] {
            assert!((p * p).approx_eq(&Mat::identity(2), 1e-14));
        }
        // {X, Y} = 0
        let anti = &(&x * &y) + &(&y * &x);
        assert!(anti.approx_eq(&Mat::zeros(2, 2), 1e-14));
    }

    #[test]
    fn dagger_properties() {
        let y = pauli_y();
        assert!(y.is_hermitian(1e-14));
        assert_eq!(y.dagger().dagger(), y);
        let a = Mat::from_flat(&[C64::new(1.0, 2.0), ZERO, I, C64::real(3.0)]);
        // (AB)† = B†A†
        let b = pauli_x();
        assert!((&a * &b)
            .dagger()
            .approx_eq(&(&b.dagger() * &a.dagger()), 1e-14));
    }

    #[test]
    fn dagger_matmul_matches_explicit() {
        let a = Mat::from_flat(&[C64::new(1.0, 2.0), C64::new(0.5, -1.0), I, C64::real(3.0)]);
        let b = pauli_y();
        assert!(a.dagger_matmul(&b).approx_eq(&(&a.dagger() * &b), 1e-14));
    }

    #[test]
    fn trace_and_hs_inner() {
        let z = pauli_z();
        assert!(z.trace().approx_eq(ZERO, 1e-14));
        assert!(Mat::identity(4).trace().approx_eq(C64::real(4.0), 1e-14));
        // ⟨A,B⟩ = Tr(A†B): Paulis are orthogonal with norm² = 2.
        let x = pauli_x();
        assert!(x.hs_inner(&x).approx_eq(C64::real(2.0), 1e-14));
        assert!(x.hs_inner(&z).approx_eq(ZERO, 1e-14));
    }

    #[test]
    fn norms() {
        let x = pauli_x();
        assert!((x.frobenius_norm() - 2f64.sqrt()).abs() < 1e-14);
        assert!((x.one_norm() - 1.0).abs() < 1e-14);
        assert!((x.max_abs() - 1.0).abs() < 1e-14);
        let a = Mat::from_reals(&[1.0, -2.0, 3.0, 4.0]);
        assert!((a.one_norm() - 6.0).abs() < 1e-14);
    }

    #[test]
    fn distances() {
        let x = pauli_x();
        let id = Mat::identity(2);
        assert!((x.l1_distance(&id) - 4.0).abs() < 1e-14);
        assert!((x.frobenius_distance(&id) - 2.0).abs() < 1e-14);
        assert!((x.max_abs_diff(&id) - 1.0).abs() < 1e-14);
        assert_eq!(x.l1_distance(&x), 0.0);
    }

    #[test]
    fn kron_shapes_and_values() {
        let x = pauli_x();
        let id = Mat::identity(2);
        let xi = x.kron(&id);
        assert_eq!(xi.rows(), 4);
        // X ⊗ I flips the *first* qubit in big-endian ordering.
        assert_eq!(xi[(0, 2)], ONE);
        assert_eq!(xi[(1, 3)], ONE);
        assert_eq!(xi[(0, 1)], ZERO);
        // (A⊗B)(C⊗D) = AC ⊗ BD
        let z = pauli_z();
        let lhs = &x.kron(&z) * &z.kron(&x);
        let rhs = (&x * &z).kron(&(&z * &x));
        assert!(lhs.approx_eq(&rhs, 1e-14));
    }

    #[test]
    fn unitarity_checks() {
        assert!(pauli_x().is_unitary(1e-14));
        assert!(Mat::identity(8).is_unitary(1e-14));
        assert!(!pauli_x().scale_re(2.0).is_unitary(1e-9));
        assert!(!Mat::zeros(2, 3).is_unitary(1e-9));
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Mat::identity(2);
        a.axpy(C64::real(2.0), &pauli_x());
        assert_eq!(a[(0, 1)], C64::real(2.0));
        assert_eq!(a[(0, 0)], ONE);
        let b = pauli_z().scale_re(-0.5);
        assert_eq!(b[(1, 1)], C64::real(0.5));
    }

    #[test]
    fn permute_basis_swap_conjugation() {
        // SWAP conjugation of CNOT(control=0) gives CNOT(control=1).
        let cnot01 = Mat::from_reals(&[
            1.0, 0.0, 0.0, 0.0, //
            0.0, 1.0, 0.0, 0.0, //
            0.0, 0.0, 0.0, 1.0, //
            0.0, 0.0, 1.0, 0.0,
        ]);
        let cnot10 = Mat::from_reals(&[
            1.0, 0.0, 0.0, 0.0, //
            0.0, 0.0, 0.0, 1.0, //
            0.0, 0.0, 1.0, 0.0, //
            0.0, 1.0, 0.0, 0.0,
        ]);
        // Swapping the two qubits permutes basis states |01⟩ ↔ |10⟩.
        let perm = [0usize, 2, 1, 3];
        assert!(cnot01.permute_basis(&perm).approx_eq(&cnot10, 1e-14));
        // Permuting twice with the same involution round-trips.
        assert!(cnot01
            .permute_basis(&perm)
            .permute_basis(&perm)
            .approx_eq(&cnot01, 1e-14));
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_shape_mismatch_panics() {
        let _ = Mat::zeros(2, 3).matmul(&Mat::zeros(2, 3));
    }

    #[test]
    #[should_panic(expected = "invalid permutation")]
    fn bad_permutation_panics() {
        let _ = Mat::identity(2).permute_basis(&[0, 0]);
    }

    #[test]
    fn debug_is_nonempty() {
        let s = format!("{:?}", Mat::identity(2));
        assert!(s.contains("Mat 2x2"));
    }

    #[test]
    fn into_variants_match_allocating_kernels() {
        let a = Mat::from_fn(3, 2, |i, j| C64::new(i as f64 + 0.5, j as f64 - 1.0));
        let b = Mat::from_fn(2, 4, |i, j| C64::new(j as f64 * 0.3, i as f64 + 0.1));
        let mut out = Mat::zeros(1, 1); // wrong shape on purpose: must resize
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        // Reuse the same buffer for the dagger product.
        let c = Mat::from_fn(3, 4, |i, j| C64::new(i as f64, -(j as f64)));
        a.dagger_matmul_into(&c, &mut out);
        assert_eq!(out, a.dagger_matmul(&c));
        // And copy_from round-trips.
        let mut d = Mat::zeros(5, 5);
        d.copy_from(&out);
        assert_eq!(d, out);
    }

    #[test]
    fn matmul_dagger_into_and_set_identity() {
        let a = Mat::from_fn(2, 3, |i, j| C64::new(i as f64 - 0.2, 0.7 * j as f64));
        let b = Mat::from_fn(4, 3, |i, j| C64::new(0.5 * j as f64, -(i as f64)));
        let mut out = Mat::zeros(0, 0);
        a.matmul_dagger_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b.dagger()));
        let mut id = Mat::from_fn(3, 1, |_, _| C64::real(9.0));
        id.set_identity(4);
        assert_eq!(id, Mat::identity(4));
    }

    #[test]
    fn matmul_trace_equals_trace_of_product() {
        let a = Mat::from_fn(3, 3, |i, j| C64::new(0.2 * i as f64 - 0.1, 0.3 * j as f64));
        let b = Mat::from_fn(3, 3, |i, j| C64::new(j as f64 - 1.0, 0.4 * i as f64));
        let direct = a.matmul(&b).trace();
        let fused = a.matmul_trace(&b);
        assert!((direct - fused).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "matmul_trace")]
    fn matmul_trace_rejects_non_square_product() {
        let _ = Mat::zeros(2, 3).matmul_trace(&Mat::zeros(3, 3));
    }
}
