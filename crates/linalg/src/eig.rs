//! Eigendecomposition of complex Hermitian matrices via the cyclic Jacobi
//! method.
//!
//! Hermitian eigensolves back three things in this workspace:
//! spectral matrix functions ([`crate::sqrtm::sqrtm_psd`],
//! [`funm_hermitian`]), the Uhlmann-fidelity similarity metric (`d₄` in the
//! paper), and cross-checks of the Padé [`crate::expm`] on Hermitian input.
//! Matrices are ≤ 32×32, where Jacobi is simple, robust, and plenty fast.

use crate::complex::{C64, ZERO};
use crate::mat::Mat;
use crate::LinalgError;

/// Result of a Hermitian eigendecomposition `A = V · diag(λ) · V†`.
#[derive(Debug, Clone)]
pub struct EigH {
    /// Real eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Unitary matrix whose columns are the corresponding eigenvectors.
    pub vectors: Mat,
}

/// Maximum number of Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 60;

/// Reusable scratch for [`eigh_into`]: the Jacobi working copy, the
/// accumulated rotations, and the sort permutation.
///
/// One workspace serves problems of any dimension; reuse only skips
/// allocations, never changes a result. The GRAPE spectral-gradient path
/// performs one eigensolve per slice per objective evaluation, so this
/// is what keeps the steady-state solver allocation-free.
#[derive(Debug)]
pub struct EighWorkspace {
    /// Jacobi working copy of the input.
    m: Mat,
    /// Accumulated eigenvector rotations.
    v: Mat,
    /// Eigenvalue sort permutation.
    idx: Vec<usize>,
    /// Unsorted diagonal eigenvalues.
    vals: Vec<f64>,
}

impl EighWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self {
            m: Mat::zeros(0, 0),
            v: Mat::zeros(0, 0),
            idx: Vec::new(),
            vals: Vec::new(),
        }
    }
}

impl Default for EighWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

/// Computes the eigendecomposition of a Hermitian matrix.
///
/// # Errors
///
/// - [`LinalgError::NotSquare`] / [`LinalgError::NonFinite`] on bad input.
/// - [`LinalgError::NotHermitian`] if `A` deviates from `A†` by more than
///   `1e-9` (relative to its largest entry).
/// - [`LinalgError::NoConvergence`] if Jacobi sweeps fail to reduce the
///   off-diagonal mass (does not occur for Hermitian input in practice).
///
/// # Examples
///
/// ```
/// use accqoc_linalg::{eigh, Mat};
///
/// let x = Mat::from_reals(&[0.0, 1.0, 1.0, 0.0]);
/// let eig = eigh(&x)?;
/// assert!((eig.values[0] + 1.0).abs() < 1e-12);
/// assert!((eig.values[1] - 1.0).abs() < 1e-12);
/// # Ok::<(), accqoc_linalg::LinalgError>(())
/// ```
pub fn eigh(a: &Mat) -> Result<EigH, LinalgError> {
    let mut out = EigH {
        values: Vec::new(),
        vectors: Mat::zeros(0, 0),
    };
    eigh_into(a, &mut out, &mut EighWorkspace::new())?;
    Ok(out)
}

/// [`eigh`] written into a caller-owned [`EigH`] through a reusable
/// [`EighWorkspace`] — no allocation once both are warm, and
/// bit-identical results (the wrapper [`eigh`] is this function with
/// throwaway buffers).
///
/// On error `out` is left untouched.
///
/// # Errors
///
/// Same as [`eigh`].
pub fn eigh_into(a: &Mat, out: &mut EigH, ws: &mut EighWorkspace) -> Result<(), LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    if !a.is_finite() {
        return Err(LinalgError::NonFinite);
    }
    let scale = a.max_abs().max(1.0);
    if hermitian_deviation(a) > 1e-9 * scale {
        return Err(LinalgError::NotHermitian);
    }
    let n = a.rows();
    ws.m.copy_from(a);
    ws.v.set_identity(n);

    // Absolute convergence threshold tied to the matrix scale.
    let tol = 1e-14 * scale.max(ws.m.frobenius_norm());

    for _sweep in 0..MAX_SWEEPS {
        let off = off_diagonal_norm(&ws.m);
        if off <= tol {
            sorted_into(ws, out);
            return Ok(());
        }
        for p in 0..n {
            for q in (p + 1)..n {
                rotate(&mut ws.m, &mut ws.v, p, q);
            }
        }
    }
    let off = off_diagonal_norm(&ws.m);
    if off <= tol * 100.0 {
        sorted_into(ws, out);
        return Ok(());
    }
    Err(LinalgError::NoConvergence {
        what: "jacobi eigh",
        iters: MAX_SWEEPS,
    })
}

/// `max |A[i,j] − conj(A[j,i])|` — the same deviation
/// [`Mat::is_hermitian`] measures, computed without materializing the
/// dagger (that method allocates; the hot eigensolve path must not).
fn hermitian_deviation(a: &Mat) -> f64 {
    let n = a.rows();
    let mut dev = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            dev = dev.max((a[(i, j)] - a[(j, i)].conj()).abs());
        }
    }
    dev
}

fn off_diagonal_norm(m: &Mat) -> f64 {
    let n = m.rows();
    let mut s = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                s += m[(i, j)].norm_sqr();
            }
        }
    }
    s.sqrt()
}

/// One complex Jacobi rotation zeroing `m[(p, q)]`, accumulating into `v`.
fn rotate(m: &mut Mat, v: &mut Mat, p: usize, q: usize) {
    let apq = m[(p, q)];
    let r = apq.abs();
    if r < 1e-300 {
        return;
    }
    let phase = apq.scale(1.0 / r); // e^{iφ}
    let alpha = m[(p, p)].re;
    let gamma = m[(q, q)].re;
    let tau = (gamma - alpha) / (2.0 * r);
    let t = if tau >= 0.0 {
        1.0 / (tau + (1.0 + tau * tau).sqrt())
    } else {
        -1.0 / (-tau + (1.0 + tau * tau).sqrt())
    };
    let c = 1.0 / (1.0 + t * t).sqrt();
    let s = t * c;

    let n = m.rows();
    // Column update: A ← A·U with U[p,p]=c, U[p,q]=s·e^{iφ}, U[q,p]=−s·e^{−iφ}, U[q,q]=c.
    for i in 0..n {
        let aip = m[(i, p)];
        let aiq = m[(i, q)];
        m[(i, p)] = aip.scale(c) - aiq * phase.conj().scale(s);
        m[(i, q)] = aip * phase.scale(s) + aiq.scale(c);
    }
    // Row update: A ← U†·A.
    for j in 0..n {
        let apj = m[(p, j)];
        let aqj = m[(q, j)];
        m[(p, j)] = apj.scale(c) - aqj * phase.scale(s);
        m[(q, j)] = apj * phase.conj().scale(s) + aqj.scale(c);
    }
    // Numerically pin the eliminated element and hermiticity of the pair.
    m[(p, q)] = ZERO;
    m[(q, p)] = ZERO;
    m[(p, p)] = C64::real(m[(p, p)].re);
    m[(q, q)] = C64::real(m[(q, q)].re);

    // Eigenvector accumulation: V ← V·U.
    for i in 0..v.rows() {
        let vip = v[(i, p)];
        let viq = v[(i, q)];
        v[(i, p)] = vip.scale(c) - viq * phase.conj().scale(s);
        v[(i, q)] = vip * phase.scale(s) + viq.scale(c);
    }
}

/// Sorts eigenpairs ascending by eigenvalue into `out`, reusing the
/// workspace permutation buffers.
///
/// The sort must be **stable**: degenerate spectra are routine (identity
/// slices, symmetric Hamiltonians), and the tie order picks which
/// eigenvector lands in which column — an unstable sort would permute
/// them and move pulse bytes pinned by the CI gates. A hand-rolled
/// insertion sort keeps the allocation-free guarantee (`slice::sort_by`
/// buys scratch for larger inputs) and produces the identical
/// permutation, because stable sorts under a total order agree.
fn sorted_into(ws: &mut EighWorkspace, out: &mut EigH) {
    let n = ws.m.rows();
    ws.vals.clear();
    for i in 0..n {
        ws.vals.push(ws.m[(i, i)].re);
    }
    ws.idx.clear();
    ws.idx.extend(0..n);
    for i in 1..n {
        let key = ws.idx[i];
        let kv = ws.vals[key];
        let mut j = i;
        while j > 0 && ws.vals[ws.idx[j - 1]].total_cmp(&kv) == std::cmp::Ordering::Greater {
            ws.idx[j] = ws.idx[j - 1];
            j -= 1;
        }
        ws.idx[j] = key;
    }
    out.values.clear();
    for &i in &ws.idx {
        out.values.push(ws.vals[i]);
    }
    out.vectors.reshape_zeros(n, n);
    for j in 0..n {
        let src = ws.idx[j];
        for i in 0..n {
            out.vectors[(i, j)] = ws.v[(i, src)];
        }
    }
}

/// Applies a real scalar function to a Hermitian matrix through its
/// spectral decomposition: `f(A) = V · diag(f(λ)) · V†`.
///
/// # Errors
///
/// Propagates [`eigh`] errors.
///
/// # Examples
///
/// ```
/// use accqoc_linalg::{funm_hermitian, Mat};
///
/// let z = Mat::from_reals(&[1.0, 0.0, 0.0, -1.0]);
/// let abs_z = funm_hermitian(&z, |x| x.abs())?;
/// assert!(abs_z.approx_eq(&Mat::identity(2), 1e-12));
/// # Ok::<(), accqoc_linalg::LinalgError>(())
/// ```
pub fn funm_hermitian(a: &Mat, f: impl Fn(f64) -> f64) -> Result<Mat, LinalgError> {
    let eig = eigh(a)?;
    let n = a.rows();
    let fvals: Vec<f64> = eig.values.iter().map(|&l| f(l)).collect();
    // V · diag(f) · V†
    let mut scaled = eig.vectors.clone();
    for j in 0..n {
        for i in 0..n {
            scaled[(i, j)] = scaled[(i, j)].scale(fvals[j]);
        }
    }
    Ok(scaled.matmul(&eig.vectors.dagger()))
}

/// Computes `exp(−i·t·H)` for Hermitian `H` exactly through the spectral
/// decomposition. Slower than the Padé route for repeated small steps but
/// exact up to the eigensolve; used as a cross-check and for long
/// evolutions.
///
/// # Errors
///
/// Propagates [`eigh`] errors.
pub fn expm_i_hermitian(h: &Mat, t: f64) -> Result<Mat, LinalgError> {
    let eig = eigh(h)?;
    let n = h.rows();
    let phases: Vec<C64> = eig.values.iter().map(|&l| C64::cis(-t * l)).collect();
    let mut scaled = eig.vectors.clone();
    for j in 0..n {
        for i in 0..n {
            scaled[(i, j)] *= phases[j];
        }
    }
    Ok(scaled.matmul(&eig.vectors.dagger()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::I;
    use crate::expm::expm_i;

    fn reconstruct(eig: &EigH) -> Mat {
        let n = eig.values.len();
        let mut scaled = eig.vectors.clone();
        for j in 0..n {
            for i in 0..n {
                scaled[(i, j)] = scaled[(i, j)].scale(eig.values[j]);
            }
        }
        scaled.matmul(&eig.vectors.dagger())
    }

    #[test]
    fn pauli_matrices_spectra() {
        let x = Mat::from_reals(&[0.0, 1.0, 1.0, 0.0]);
        let y = Mat::from_flat(&[ZERO, -I, I, ZERO]);
        let z = Mat::from_reals(&[1.0, 0.0, 0.0, -1.0]);
        for p in [&x, &y, &z] {
            let e = eigh(p).unwrap();
            assert!((e.values[0] + 1.0).abs() < 1e-12);
            assert!((e.values[1] - 1.0).abs() < 1e-12);
            assert!(e.vectors.is_unitary(1e-11));
            assert!(reconstruct(&e).approx_eq(p, 1e-11));
        }
    }

    #[test]
    fn diagonal_matrix_is_fixed_point() {
        let d = Mat::diag(&[C64::real(3.0), C64::real(-1.0), C64::real(0.5)]);
        let e = eigh(&d).unwrap();
        assert_eq!(e.values.len(), 3);
        assert!((e.values[0] + 1.0).abs() < 1e-13);
        assert!((e.values[1] - 0.5).abs() < 1e-13);
        assert!((e.values[2] - 3.0).abs() < 1e-13);
    }

    #[test]
    fn random_hermitian_reconstruction() {
        // Deterministic pseudo-random Hermitian 8×8.
        let g = Mat::from_fn(8, 8, |i, j| {
            C64::new(
                ((i * 31 + j * 17) % 13) as f64 / 13.0 - 0.5,
                ((i * 7 + j * 29) % 11) as f64 / 11.0 - 0.5,
            )
        });
        let h = &g + &g.dagger();
        let e = eigh(&h).unwrap();
        assert!(e.vectors.is_unitary(1e-10));
        assert!(reconstruct(&e).approx_eq(&h, 1e-10));
        // Eigenvalues ascending.
        for w in e.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        // Trace preserved.
        let tr: f64 = e.values.iter().sum();
        assert!((tr - h.trace().re).abs() < 1e-9);
    }

    #[test]
    fn degenerate_spectrum() {
        let h = Mat::identity(4).scale_re(2.0);
        let e = eigh(&h).unwrap();
        for v in &e.values {
            assert!((v - 2.0).abs() < 1e-13);
        }
        assert!(e.vectors.is_unitary(1e-12));
    }

    #[test]
    fn eigh_into_reuse_is_bit_identical_to_eigh() {
        let g = Mat::from_fn(6, 6, |i, j| {
            C64::new(
                ((i * 13 + j * 5) % 17) as f64 / 17.0 - 0.4,
                ((i * 3 + j * 11) % 7) as f64 / 7.0 - 0.5,
            )
        });
        let h1 = &g + &g.dagger();
        let h2 = h1.scale_re(0.37);
        let mut ws = EighWorkspace::new();
        let mut out = EigH {
            values: Vec::new(),
            vectors: Mat::zeros(0, 0),
        };
        // Warm the workspace on a different matrix first, then re-solve:
        // reuse must not leak state between solves.
        eigh_into(&h2, &mut out, &mut ws).unwrap();
        eigh_into(&h1, &mut out, &mut ws).unwrap();
        let fresh = eigh(&h1).unwrap();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&out.values), bits(&fresh.values));
        assert_eq!(out.vectors, fresh.vectors);
        for (a, b) in out.vectors.as_slice().iter().zip(fresh.vectors.as_slice()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    fn degenerate_tie_order_is_stable_across_entry_points() {
        // Ties must keep Jacobi column order — the pinned-pulse gates
        // depend on it. Identity-like spectra exercise the tie path.
        let h = Mat::identity(5).scale_re(0.25);
        let a = eigh(&h).unwrap();
        let mut ws = EighWorkspace::new();
        let mut b = EigH {
            values: Vec::new(),
            vectors: Mat::zeros(0, 0),
        };
        eigh_into(&h, &mut b, &mut ws).unwrap();
        assert_eq!(a.vectors, b.vectors);
        assert_eq!(a.values, b.values);
    }

    #[test]
    fn rejects_non_hermitian() {
        let a = Mat::from_reals(&[0.0, 1.0, 0.0, 0.0]);
        assert!(matches!(eigh(&a), Err(LinalgError::NotHermitian)));
    }

    #[test]
    fn funm_square_matches_matmul() {
        let g = Mat::from_fn(4, 4, |i, j| {
            C64::new((i + j) as f64 * 0.1, (i as f64 - j as f64) * 0.2)
        });
        let h = &g + &g.dagger();
        let sq = funm_hermitian(&h, |x| x * x).unwrap();
        assert!(sq.approx_eq(&h.matmul(&h), 1e-10));
    }

    #[test]
    fn spectral_expm_matches_pade() {
        let g = Mat::from_fn(4, 4, |i, j| {
            C64::new((3 * i + j) as f64 * 0.13, (i as f64 - j as f64) * 0.21)
        });
        let h = &g + &g.dagger();
        for &t in &[0.1, 1.0, 5.0] {
            let a = expm_i_hermitian(&h, t).unwrap();
            let b = expm_i(&h, t).unwrap();
            assert!(a.approx_eq(&b, 1e-9), "t={t}: diff {}", a.max_abs_diff(&b));
        }
    }
}
