//! LU decomposition with partial pivoting for complex matrices.
//!
//! Used by the Padé rational approximation inside [`crate::expm`] (which
//! must solve `Q · X = P`) and to form explicit inverses in tests.

use crate::complex::{C64, ZERO};
use crate::mat::Mat;
use crate::LinalgError;

/// An LU factorization `P·A = L·U` of a square matrix.
///
/// `L` is unit lower triangular, `U` upper triangular, and `P` a row
/// permutation; both factors are packed into one matrix.
///
/// # Examples
///
/// ```
/// use accqoc_linalg::{Lu, Mat};
///
/// let a = Mat::from_reals(&[4.0, 3.0, 6.0, 3.0]);
/// let lu = Lu::factor(&a)?;
/// let x = lu.solve_mat(&Mat::identity(2))?; // A⁻¹
/// assert!(a.matmul(&x).approx_eq(&Mat::identity(2), 1e-12));
/// # Ok::<(), accqoc_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    packed: Mat,
    /// Row permutation: row `i` of the factorization came from row
    /// `pivots[i]` of the original matrix.
    pivots: Vec<usize>,
    /// Sign of the permutation (±1), kept for determinants.
    perm_sign: f64,
}

impl Lu {
    /// Factors a square matrix with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if a pivot is (numerically) zero,
    /// and [`LinalgError::NotSquare`] for non-square input.
    pub fn factor(a: &Mat) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut m = a.clone();
        let mut pivots: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Find pivot row: largest modulus in column k at/below the diagonal.
            let (mut best_row, mut best_mag) = (k, m[(k, k)].norm_sqr());
            for r in (k + 1)..n {
                let mag = m[(r, k)].norm_sqr();
                if mag > best_mag {
                    best_mag = mag;
                    best_row = r;
                }
            }
            if best_mag == 0.0 {
                return Err(LinalgError::Singular { pivot: k });
            }
            if best_row != k {
                for j in 0..n {
                    let tmp = m[(k, j)];
                    m[(k, j)] = m[(best_row, j)];
                    m[(best_row, j)] = tmp;
                }
                pivots.swap(k, best_row);
                perm_sign = -perm_sign;
            }
            let pivot = m[(k, k)];
            let inv_pivot = pivot.recip();
            for r in (k + 1)..n {
                let factor = m[(r, k)] * inv_pivot;
                m[(r, k)] = factor;
                if factor == ZERO {
                    continue;
                }
                for j in (k + 1)..n {
                    let sub = factor * m[(k, j)];
                    m[(r, j)] -= sub;
                }
            }
        }
        Ok(Self {
            packed: m,
            pivots,
            perm_sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.packed.rows()
    }

    /// Solves `A·x = b` for a single right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != dim()`.
    #[allow(clippy::needless_range_loop)] // triangular index bounds, not a full scan
    pub fn solve(&self, b: &[C64]) -> Result<Vec<C64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                what: "solve rhs length",
                expected: n,
                got: b.len(),
            });
        }
        // Apply permutation, then forward/back substitution.
        let mut x: Vec<C64> = self.pivots.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.packed[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.packed[(i, j)] * x[j];
            }
            x[i] = acc * self.packed[(i, i)].recip();
        }
        Ok(x)
    }

    /// Solves `A·X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `B.rows() != dim()`.
    pub fn solve_mat(&self, b: &Mat) -> Result<Mat, LinalgError> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                what: "solve_mat rhs rows",
                expected: n,
                got: b.rows(),
            });
        }
        let mut out = Mat::zeros(n, b.cols());
        let mut col = vec![ZERO; n];
        for j in 0..b.cols() {
            for i in 0..n {
                col[i] = b[(i, j)];
            }
            let x = self.solve(&col)?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Determinant of the original matrix: `±Π uᵢᵢ`.
    pub fn det(&self) -> C64 {
        let prod: C64 = (0..self.dim()).map(|i| self.packed[(i, i)]).product();
        prod.scale(self.perm_sign)
    }
}

/// Convenience inverse via LU.
///
/// # Errors
///
/// Propagates factorization errors (singular / non-square input).
///
/// # Examples
///
/// ```
/// use accqoc_linalg::{inverse, Mat};
/// let a = Mat::from_reals(&[1.0, 2.0, 3.0, 4.0]);
/// let inv = inverse(&a)?;
/// assert!(a.matmul(&inv).approx_eq(&Mat::identity(2), 1e-12));
/// # Ok::<(), accqoc_linalg::LinalgError>(())
/// ```
pub fn inverse(a: &Mat) -> Result<Mat, LinalgError> {
    Lu::factor(a)?.solve_mat(&Mat::identity(a.rows()))
}

/// Solves `A·X = B` in one call.
///
/// # Errors
///
/// Propagates factorization/shape errors.
pub fn solve(a: &Mat, b: &Mat) -> Result<Mat, LinalgError> {
    Lu::factor(a)?.solve_mat(b)
}

/// Determinant via LU; zero-pivot matrices report determinant 0.
pub fn det(a: &Mat) -> Result<C64, LinalgError> {
    match Lu::factor(a) {
        Ok(lu) => Ok(lu.det()),
        Err(LinalgError::Singular { .. }) => Ok(ZERO),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{I, ONE};

    #[test]
    fn solve_known_system() {
        // [2 1; 1 3] x = [5; 10] → x = [1; 3]
        let a = Mat::from_reals(&[2.0, 1.0, 1.0, 3.0]);
        let x = Lu::factor(&a)
            .unwrap()
            .solve(&[C64::real(5.0), C64::real(10.0)])
            .unwrap();
        assert!(x[0].approx_eq(C64::real(1.0), 1e-12));
        assert!(x[1].approx_eq(C64::real(3.0), 1e-12));
    }

    #[test]
    fn inverse_roundtrip_complex() {
        let a = Mat::from_flat(&[
            C64::new(1.0, 1.0),
            C64::new(2.0, -1.0),
            I,
            C64::new(3.0, 0.5),
        ]);
        let inv = inverse(&a).unwrap();
        assert!(a.matmul(&inv).approx_eq(&Mat::identity(2), 1e-12));
        assert!(inv.matmul(&a).approx_eq(&Mat::identity(2), 1e-12));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Mat::from_reals(&[0.0, 1.0, 1.0, 0.0]);
        let inv = inverse(&a).unwrap();
        assert!(inv.approx_eq(&a, 1e-14)); // X is its own inverse
    }

    #[test]
    fn singular_matrix_reports_error() {
        let a = Mat::from_reals(&[1.0, 2.0, 2.0, 4.0]);
        match Lu::factor(&a) {
            Err(LinalgError::Singular { .. }) => {}
            other => panic!("expected Singular, got {other:?}"),
        }
        assert!(det(&a).unwrap().approx_eq(ZERO, 1e-14));
    }

    #[test]
    fn non_square_rejected() {
        let a = Mat::zeros(2, 3);
        assert!(matches!(Lu::factor(&a), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn determinant_values() {
        let a = Mat::from_reals(&[1.0, 2.0, 3.0, 4.0]);
        assert!(det(&a).unwrap().approx_eq(C64::real(-2.0), 1e-12));
        let id = Mat::identity(5);
        assert!(det(&id).unwrap().approx_eq(ONE, 1e-12));
        // Permutation matrix determinant is the permutation sign.
        let p = Mat::from_reals(&[0.0, 1.0, 1.0, 0.0]);
        assert!(det(&p).unwrap().approx_eq(C64::real(-1.0), 1e-12));
    }

    #[test]
    fn solve_mat_multiple_rhs() {
        let a = Mat::from_reals(&[3.0, 1.0, 1.0, 2.0]);
        let b = Mat::from_reals(&[9.0, 4.0, 8.0, 3.0]);
        let x = solve(&a, &b).unwrap();
        assert!(a.matmul(&x).approx_eq(&b, 1e-12));
    }

    #[test]
    fn shape_mismatch_errors() {
        let lu = Lu::factor(&Mat::identity(3)).unwrap();
        assert!(matches!(
            lu.solve(&[ZERO; 2]),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            lu.solve_mat(&Mat::zeros(2, 2)),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn larger_random_like_system() {
        // Deterministic well-conditioned 6×6: diagonally dominant.
        let n = 6;
        let a = Mat::from_fn(n, n, |i, j| {
            if i == j {
                C64::new(10.0 + i as f64, 1.0)
            } else {
                C64::new(
                    ((i * 7 + j * 3) % 5) as f64 * 0.3,
                    ((i + 2 * j) % 3) as f64 * -0.2,
                )
            }
        });
        let inv = inverse(&a).unwrap();
        assert!(a.matmul(&inv).approx_eq(&Mat::identity(n), 1e-10));
    }
}
