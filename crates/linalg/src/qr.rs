//! Householder QR factorization and Haar-random unitary sampling.
//!
//! Random unitaries (QR of a complex Ginibre matrix with the standard phase
//! fix) are used for GRAPE stress tests and synthetic group generation.

use rand::Rng;

use crate::complex::{C64, ONE, ZERO};
use crate::mat::Mat;
use crate::LinalgError;

/// A QR factorization `A = Q·R` with unitary `Q` and upper-triangular `R`.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Unitary factor.
    pub q: Mat,
    /// Upper-triangular factor.
    pub r: Mat,
}

/// Computes a Householder QR factorization.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] when `rows < cols` (only the
/// tall/square case is needed here) and [`LinalgError::NonFinite`] on bad
/// entries.
///
/// # Examples
///
/// ```
/// use accqoc_linalg::{qr, Mat};
///
/// let a = Mat::from_reals(&[2.0, 1.0, 0.0, 3.0]);
/// let f = qr(&a)?;
/// assert!(f.q.is_unitary(1e-12));
/// assert!(f.q.matmul(&f.r).approx_eq(&a, 1e-12));
/// # Ok::<(), accqoc_linalg::LinalgError>(())
/// ```
pub fn qr(a: &Mat) -> Result<Qr, LinalgError> {
    if a.rows() < a.cols() {
        return Err(LinalgError::ShapeMismatch {
            what: "qr requires rows >= cols",
            expected: a.cols(),
            got: a.rows(),
        });
    }
    if !a.is_finite() {
        return Err(LinalgError::NonFinite);
    }
    let m = a.rows();
    let n = a.cols();
    let mut r = a.clone();
    let mut q = Mat::identity(m);

    for k in 0..n.min(m.saturating_sub(1)) {
        // Householder vector for column k below the diagonal.
        let mut norm_sq = 0.0;
        for i in k..m {
            norm_sq += r[(i, k)].norm_sqr();
        }
        let norm = norm_sq.sqrt();
        if norm < 1e-300 {
            continue;
        }
        let akk = r[(k, k)];
        // alpha = -e^{i·arg(akk)}·‖x‖ keeps v well-conditioned.
        let phase = if akk.abs() < 1e-300 {
            ONE
        } else {
            akk.scale(1.0 / akk.abs())
        };
        let alpha = -(phase.scale(norm));
        let mut v: Vec<C64> = (k..m).map(|i| r[(i, k)]).collect();
        v[0] -= alpha;
        let vnorm_sq: f64 = v.iter().map(|z| z.norm_sqr()).sum();
        if vnorm_sq < 1e-300 {
            continue;
        }
        let beta = 2.0 / vnorm_sq;

        // R ← (I − β v v†) R, applied to columns k..n.
        for j in k..n {
            let mut dot = ZERO; // v† · R[:, j]
            for (i, vi) in v.iter().enumerate() {
                dot += vi.conj() * r[(k + i, j)];
            }
            let dot = dot.scale(beta);
            for (i, vi) in v.iter().enumerate() {
                let sub = *vi * dot;
                r[(k + i, j)] -= sub;
            }
        }
        // Q ← Q (I − β v v†), applied to all rows.
        for i in 0..m {
            let mut dot = ZERO; // Q[i, k..m] · v
            for (l, vl) in v.iter().enumerate() {
                dot += q[(i, k + l)] * *vl;
            }
            let dot = dot.scale(beta);
            for (l, vl) in v.iter().enumerate() {
                let sub = dot * vl.conj();
                q[(i, k + l)] -= sub;
            }
        }
        // Clean the column below the diagonal.
        r[(k, k)] = alpha;
        for i in (k + 1)..m {
            r[(i, k)] = ZERO;
        }
    }
    Ok(Qr { q, r })
}

/// Samples a Haar-distributed random `n×n` unitary matrix.
///
/// Standard construction: QR of a complex Ginibre matrix, with the phases
/// of `R`'s diagonal folded into `Q` so the distribution is exactly Haar.
///
/// # Examples
///
/// ```
/// use accqoc_linalg::random_unitary;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let u = random_unitary(4, &mut rng);
/// assert!(u.is_unitary(1e-10));
/// ```
pub fn random_unitary<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Mat {
    // Box–Muller normal samples keep us off external distributions crates.
    let mut normal = || {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    let g = Mat::from_fn(n, n, |_, _| C64::new(normal(), normal()));
    let f = qr(&g).expect("ginibre matrix is finite and square");
    // Fold diag(R) phases into Q: Q ← Q · diag(r_ii/|r_ii|).
    let mut q = f.q;
    for j in 0..n {
        let d = f.r[(j, j)];
        let phase = if d.abs() < 1e-300 {
            ONE
        } else {
            d.scale(1.0 / d.abs())
        };
        for i in 0..n {
            q[(i, j)] *= phase;
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn qr_reconstructs_and_is_triangular() {
        let a = Mat::from_fn(5, 5, |i, j| {
            C64::new(
                ((i * 7 + j) % 5) as f64 - 2.0,
                ((i + j * 3) % 4) as f64 - 1.5,
            )
        });
        let f = qr(&a).unwrap();
        assert!(f.q.is_unitary(1e-11));
        assert!(f.q.matmul(&f.r).approx_eq(&a, 1e-11));
        for i in 0..5 {
            for j in 0..i {
                assert!(f.r[(i, j)].abs() < 1e-11, "R not triangular at ({i},{j})");
            }
        }
    }

    #[test]
    fn qr_tall_matrix() {
        let a = Mat::from_fn(6, 3, |i, j| C64::new((i + j) as f64, (i as f64) * 0.5));
        let f = qr(&a).unwrap();
        assert!(f.q.is_unitary(1e-11));
        assert!(f.q.matmul(&f.r).approx_eq(&a, 1e-10));
    }

    #[test]
    fn qr_rejects_wide_matrix() {
        assert!(matches!(
            qr(&Mat::zeros(2, 4)),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn random_unitary_is_unitary_and_seeded() {
        let mut rng1 = StdRng::seed_from_u64(42);
        let mut rng2 = StdRng::seed_from_u64(42);
        for n in [1, 2, 4, 8, 16] {
            let u = random_unitary(n, &mut rng1);
            assert!(u.is_unitary(1e-9), "n={n}");
            let v = random_unitary(n, &mut rng2);
            assert!(u.approx_eq(&v, 0.0), "determinism broken at n={n}");
        }
    }

    #[test]
    fn random_unitaries_differ_across_seeds() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let u = random_unitary(4, &mut a);
        let v = random_unitary(4, &mut b);
        assert!(u.max_abs_diff(&v) > 1e-3);
    }
}
