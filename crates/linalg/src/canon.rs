//! Canonicalization of unitaries up to global phase, plus quantized byte
//! keys for hashing.
//!
//! Two pulses are interchangeable whenever their unitaries agree up to a
//! global phase, so group de-duplication (paper §IV-C) and cache lookups
//! must operate on phase-canonicalized, quantized matrices.

use crate::complex::{C64, ZERO};
use crate::mat::Mat;

/// Returns `e^{−iθ}·A` where `θ` is chosen so that the first entry (in
/// row-major order) whose modulus is at least half the matrix maximum
/// becomes real and positive.
///
/// The anchor rule is deterministic and stable under small perturbations of
/// the *other* entries, which keeps quantized keys consistent.
///
/// # Examples
///
/// ```
/// use accqoc_linalg::{global_phase_canonical, Mat, C64};
///
/// let a = Mat::identity(2).scale(C64::cis(1.25));
/// let c = global_phase_canonical(&a);
/// assert!(c.approx_eq(&Mat::identity(2), 1e-12));
/// ```
pub fn global_phase_canonical(a: &Mat) -> Mat {
    let max = a.max_abs();
    if max <= 0.0 {
        return a.clone();
    }
    let threshold = 0.5 * max;
    let anchor = a
        .as_slice()
        .iter()
        .find(|z| z.abs() >= threshold)
        .copied()
        .unwrap_or(ZERO);
    if anchor.abs() <= 0.0 {
        return a.clone();
    }
    a.scale(C64::cis(-anchor.arg()))
}

/// `true` if `a ≈ e^{iθ}·b` for some global phase `θ` (entry-wise tolerance
/// `tol` after optimal phase alignment).
///
/// # Examples
///
/// ```
/// use accqoc_linalg::{approx_eq_up_to_phase, Mat, C64};
///
/// let a = Mat::identity(2);
/// let b = a.scale(C64::cis(0.3));
/// assert!(approx_eq_up_to_phase(&a, &b, 1e-12));
/// ```
pub fn approx_eq_up_to_phase(a: &Mat, b: &Mat, tol: f64) -> bool {
    if a.rows() != b.rows() || a.cols() != b.cols() {
        return false;
    }
    // Best phase: arg of ⟨A, B⟩. If orthogonal, fall back to raw compare.
    let inner = a.hs_inner(b);
    if inner.abs() < 1e-300 {
        return a.approx_eq(b, tol);
    }
    let aligned = b.scale(C64::cis(-inner.arg()));
    a.approx_eq(&aligned, tol)
}

/// Gate infidelity between two unitaries, `1 − |Tr(A†B)| / d` — zero iff
/// they agree up to global phase. This is the quantity GRAPE drives to the
/// paper's `10⁻⁴` convergence target.
///
/// # Panics
///
/// Panics on shape mismatch or non-square input.
pub fn phase_invariant_infidelity(a: &Mat, b: &Mat) -> f64 {
    assert!(a.is_square() && a.rows() == b.rows() && a.cols() == b.cols());
    let d = a.rows() as f64;
    let overlap = a.hs_inner(b).abs() / d;
    if overlap.is_nan() {
        // Non-finite inputs must score as maximally *bad*: f64::max
        // would otherwise discard the NaN and report a perfect 0.0.
        return 1.0;
    }
    (1.0 - overlap).max(0.0)
}

/// Gate fidelity between two unitaries, `|Tr(A†B)| / d` — one iff they
/// agree up to global phase; the complement of
/// [`phase_invariant_infidelity`]. This is the headline number the
/// verification oracle reports per gate group.
///
/// # Panics
///
/// Panics on shape mismatch or non-square input.
///
/// # Examples
///
/// ```
/// use accqoc_linalg::{phase_invariant_fidelity, Mat, C64};
///
/// let a = Mat::identity(2);
/// let b = a.scale(C64::cis(0.4)); // pure global phase
/// assert!((phase_invariant_fidelity(&a, &b) - 1.0).abs() < 1e-12);
/// ```
pub fn phase_invariant_fidelity(a: &Mat, b: &Mat) -> f64 {
    assert!(a.is_square() && a.rows() == b.rows() && a.cols() == b.cols());
    let d = a.rows() as f64;
    let overlap = a.hs_inner(b).abs() / d;
    if overlap.is_nan() {
        // A NaN-poisoned matrix (e.g. a corrupted cached pulse propagated
        // to NaN) must score zero, not slip through f64::min as 1.0 — a
        // verifier that scores garbage as perfect is worse than none.
        return 0.0;
    }
    overlap.min(1.0)
}

/// Quantizes a matrix to `i64` grid points at resolution `eps` and returns
/// the little-endian byte string, suitable as a hash key.
///
/// Matrices closer than `≈ eps/2` entry-wise map to the same key (after
/// identical canonicalization). Use together with
/// [`global_phase_canonical`].
///
/// # Examples
///
/// ```
/// use accqoc_linalg::{quantized_bytes, Mat};
///
/// let a = Mat::identity(2);
/// let mut b = Mat::identity(2);
/// b[(0, 0)].re += 1e-9; // below resolution
/// assert_eq!(quantized_bytes(&a, 1e-6), quantized_bytes(&b, 1e-6));
/// ```
pub fn quantized_bytes(a: &Mat, eps: f64) -> Vec<u8> {
    let mut out = Vec::with_capacity(a.as_slice().len() * 16 + 8);
    out.extend_from_slice(&(a.rows() as u32).to_le_bytes());
    out.extend_from_slice(&(a.cols() as u32).to_le_bytes());
    for z in a.as_slice() {
        // `+ 0.0` normalizes −0.0 so it quantizes identically to +0.0.
        let re = ((z.re / eps).round() + 0.0) as i64;
        let im = ((z.im / eps).round() + 0.0) as i64;
        out.extend_from_slice(&re.to_le_bytes());
        out.extend_from_slice(&im.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::I;

    #[test]
    fn canonical_anchor_is_real_positive() {
        let a = Mat::from_flat(&[ZERO, I, I.scale(-1.0), ZERO]);
        let c = global_phase_canonical(&a);
        // First large entry (0,1) becomes real positive.
        assert!(c[(0, 1)].im.abs() < 1e-14);
        assert!(c[(0, 1)].re > 0.0);
    }

    #[test]
    fn canonical_is_idempotent() {
        let a = Mat::from_flat(&[
            C64::new(0.3, 0.4),
            C64::new(-0.2, 0.1),
            C64::new(0.0, -0.9),
            C64::new(0.5, 0.5),
        ]);
        let c1 = global_phase_canonical(&a);
        let c2 = global_phase_canonical(&c1);
        assert!(c1.approx_eq(&c2, 1e-13));
    }

    #[test]
    fn canonical_removes_any_phase() {
        let a = Mat::from_flat(&[
            C64::new(0.6, 0.0),
            C64::new(0.0, 0.8),
            C64::new(0.0, -0.8),
            C64::new(0.6, 0.0),
        ]);
        for k in 0..8 {
            let phased = a.scale(C64::cis(k as f64 * 0.7));
            assert!(global_phase_canonical(&phased).approx_eq(&global_phase_canonical(&a), 1e-12));
        }
    }

    #[test]
    fn zero_matrix_passthrough() {
        let z = Mat::zeros(2, 2);
        assert!(global_phase_canonical(&z).approx_eq(&z, 0.0));
    }

    #[test]
    fn fidelity_complements_infidelity() {
        let h = Mat::from_reals(&[1.0, 1.0, 1.0, -1.0]).scale_re(std::f64::consts::FRAC_1_SQRT_2);
        let x = Mat::from_reals(&[0.0, 1.0, 1.0, 0.0]);
        let fid = phase_invariant_fidelity(&h, &x);
        let infid = phase_invariant_infidelity(&h, &x);
        assert!((fid + infid - 1.0).abs() < 1e-12);
        assert!(fid < 1.0, "distinct gates are not equivalent");
        // Orthogonal pair: fidelity bottoms out at 0.
        let z = Mat::from_reals(&[1.0, 0.0, 0.0, -1.0]);
        assert!(phase_invariant_fidelity(&x, &z) < 1e-12);
        // Phase-equivalent pair: exactly 1 (clamped).
        let phased = x.scale(C64::cis(1.3));
        assert!((phase_invariant_fidelity(&x, &phased) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nan_inputs_score_maximally_bad_not_perfect() {
        let good = Mat::identity(2);
        let mut poisoned = Mat::identity(2);
        poisoned[(0, 0)] = C64::real(f64::NAN);
        assert_eq!(phase_invariant_fidelity(&good, &poisoned), 0.0);
        assert_eq!(phase_invariant_fidelity(&poisoned, &good), 0.0);
        assert_eq!(phase_invariant_infidelity(&good, &poisoned), 1.0);
        assert_eq!(phase_invariant_infidelity(&poisoned, &poisoned), 1.0);
    }

    #[test]
    fn phase_equality_checks() {
        let a = Mat::from_flat(&[C64::real(1.0), ZERO, ZERO, I]);
        let b = a.scale(C64::cis(2.1));
        assert!(approx_eq_up_to_phase(&a, &b, 1e-12));
        let c = Mat::from_reals(&[0.0, 1.0, 1.0, 0.0]);
        assert!(!approx_eq_up_to_phase(&a, &c, 1e-6));
        assert!(!approx_eq_up_to_phase(&a, &Mat::zeros(3, 3), 1e-6));
    }

    #[test]
    fn infidelity_zero_iff_phase_equal() {
        let a = Mat::identity(4);
        let b = a.scale(C64::cis(-0.9));
        assert!(phase_invariant_infidelity(&a, &b) < 1e-14);
        let x = Mat::from_reals(&[0.0, 1.0, 1.0, 0.0]);
        let inf = phase_invariant_infidelity(&Mat::identity(2), &x);
        assert!(inf > 0.9, "X vs I infidelity = {inf}");
    }

    #[test]
    fn quantized_bytes_distinguish_and_merge() {
        let a = Mat::identity(2);
        let x = Mat::from_reals(&[0.0, 1.0, 1.0, 0.0]);
        assert_ne!(quantized_bytes(&a, 1e-6), quantized_bytes(&x, 1e-6));
        let mut near = a.clone();
        near[(1, 1)].re += 4e-7; // rounds to the same 1e-6 grid point
        assert_eq!(quantized_bytes(&a, 1e-6), quantized_bytes(&near, 1e-6));
        // Shape is part of the key.
        assert_ne!(
            quantized_bytes(&Mat::zeros(2, 2), 1e-6),
            quantized_bytes(&Mat::zeros(4, 4), 1e-6)
        );
    }

    #[test]
    fn quantized_bytes_negative_zero_normalized() {
        let mut a = Mat::zeros(1, 1);
        a[(0, 0)] = C64::new(-0.0, 0.0);
        let b = Mat::zeros(1, 1);
        assert_eq!(quantized_bytes(&a, 1e-6), quantized_bytes(&b, 1e-6));
    }
}
