//! Error type shared by all linear-algebra routines.

use std::error::Error;
use std::fmt;

/// Errors returned by `accqoc-linalg` operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// The operation requires a square matrix.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// A pivot vanished during factorization.
    Singular {
        /// Index of the vanishing pivot.
        pivot: usize,
    },
    /// Dimension disagreement between operands.
    ShapeMismatch {
        /// Which quantity mismatched.
        what: &'static str,
        /// Expected dimension.
        expected: usize,
        /// Observed dimension.
        got: usize,
    },
    /// Input contained NaN or infinite entries.
    NonFinite,
    /// The operation requires a Hermitian matrix.
    NotHermitian,
    /// The operation requires a positive semidefinite matrix.
    NotPsd {
        /// The offending (most negative) eigenvalue.
        eigenvalue: f64,
    },
    /// An iterative method failed to converge.
    NoConvergence {
        /// Which method failed.
        what: &'static str,
        /// Iterations performed before giving up.
        iters: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotSquare { rows, cols } => {
                write!(f, "expected square matrix, got {rows}x{cols}")
            }
            Self::Singular { pivot } => write!(f, "matrix is singular (zero pivot at {pivot})"),
            Self::ShapeMismatch {
                what,
                expected,
                got,
            } => {
                write!(
                    f,
                    "shape mismatch in {what}: expected {expected}, got {got}"
                )
            }
            Self::NonFinite => write!(f, "matrix contains non-finite entries"),
            Self::NotHermitian => write!(f, "matrix is not hermitian"),
            Self::NotPsd { eigenvalue } => {
                write!(
                    f,
                    "matrix is not positive semidefinite (eigenvalue {eigenvalue})"
                )
            }
            Self::NoConvergence { what, iters } => {
                write!(f, "{what} did not converge after {iters} iterations")
            }
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(LinalgError, &str)> = vec![
            (LinalgError::NotSquare { rows: 2, cols: 3 }, "2x3"),
            (LinalgError::Singular { pivot: 1 }, "pivot at 1"),
            (
                LinalgError::ShapeMismatch {
                    what: "solve rhs length",
                    expected: 4,
                    got: 2,
                },
                "solve rhs length",
            ),
            (LinalgError::NonFinite, "non-finite"),
            (LinalgError::NotHermitian, "hermitian"),
            (LinalgError::NotPsd { eigenvalue: -0.5 }, "-0.5"),
            (
                LinalgError::NoConvergence {
                    what: "jacobi eigh",
                    iters: 60,
                },
                "60",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
            assert!(!msg.is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
