//! Dense complex linear algebra for quantum optimal control.
//!
//! This crate is the numerical substrate of the AccQOC reproduction
//! (Cheng, Deng, Qian — ISCA 2020). Quantum gate groups are small unitary
//! matrices (`2×2` to `32×32`), and GRAPE pulse optimization spends nearly
//! all of its time exponentiating Hamiltonians, so the crate provides
//! exactly the dense kernels that workload needs and nothing else:
//!
//! - [`C64`] — complex scalars; [`Mat`] — dense row-major complex matrices.
//! - [`expm`] / [`expm_i`] — Padé-13 scaling-and-squaring matrix
//!   exponential (Higham 2005) and the Hamiltonian propagator
//!   `exp(−i·t·H)`; [`expm_frechet`] — exact directional derivatives.
//! - [`Lu`] / [`solve`] / [`inverse`] — LU with partial pivoting.
//! - [`eigh`] — complex Hermitian Jacobi eigensolver; [`funm_hermitian`],
//!   [`expm_i_hermitian`] spectral matrix functions.
//! - [`sqrtm_psd`] / [`sqrtm_db`] — matrix square roots (spectral and
//!   Denman–Beavers), used by the paper's Uhlmann-fidelity similarity.
//! - [`qr`] / [`random_unitary`] — Householder QR and Haar sampling.
//! - [`global_phase_canonical`] / [`quantized_bytes`] — canonical forms for
//!   group de-duplication and pulse-cache keys.
//! - [`trace_moments_abs`] / [`diag_abs_profile`] / [`row_peak_profile`] —
//!   cheap phase-invariant fingerprint features backing the pulse
//!   library's sublinear nearest-neighbor index.
//!
//! # Example
//!
//! ```
//! use accqoc_linalg::{expm_i, Mat, phase_invariant_infidelity};
//! use std::f64::consts::FRAC_PI_2;
//!
//! // Evolving under the Pauli-X Hamiltonian for t = π/2 implements an
//! // X gate up to global phase.
//! let x = Mat::from_reals(&[0.0, 1.0, 1.0, 0.0]);
//! let u = expm_i(&x, FRAC_PI_2)?;
//! assert!(phase_invariant_infidelity(&u, &x) < 1e-12);
//! # Ok::<(), accqoc_linalg::LinalgError>(())
//! ```

#![warn(missing_docs)]

mod canon;
mod complex;
mod eig;
mod error;
mod expm;
mod fingerprint;
pub mod kernels;
mod lu;
mod mat;
mod qr;
mod sqrtm;

pub use canon::{
    approx_eq_up_to_phase, global_phase_canonical, phase_invariant_fidelity,
    phase_invariant_infidelity, quantized_bytes,
};
pub use complex::{C64, I, ONE, ZERO};
pub use eig::{eigh, eigh_into, expm_i_hermitian, funm_hermitian, EigH, EighWorkspace};
pub use error::LinalgError;
pub use expm::{expm, expm_frechet, expm_i};
pub use fingerprint::{diag_abs_profile, row_peak_profile, trace_moments_abs};
pub use lu::{det, inverse, solve, Lu};
pub use mat::Mat;
pub use qr::{qr, random_unitary, Qr};
pub use sqrtm::{sqrtm_db, sqrtm_psd};
