//! Bit-identity property suite for the register-blocked kernels.
//!
//! Every blocked/fused kernel must reproduce the exact bytes of its
//! preserved naive reference (`kernels::reference`) on **random**
//! dimensions 1–17 — covering every remainder class of the 2×4 output
//! tile, including single rows, single columns, and the degenerate 1×1 —
//! with exact `==` on all output bits, not approximate equality. This is
//! the property the golden-pulse CI gates rely on: if these hold, kernel
//! dispatch cannot move a single pulse byte.

use accqoc_linalg::{kernels, Mat, C64, ZERO};
use proptest::prelude::*;

/// Largest dimension exercised; `MAX_DIM × MAX_DIM` buffers are drawn up
/// front and sliced down to each case's random shape.
const MAX_DIM: usize = 17;

/// Strategy: three random dims in 1–17 plus two full-size random complex
/// buffers; the cases slice the buffers down to the shapes they need.
fn case_strategy() -> impl Strategy<Value = (usize, usize, usize, Vec<C64>, Vec<C64>)> {
    (
        1usize..MAX_DIM + 1,
        1usize..MAX_DIM + 1,
        1usize..MAX_DIM + 1,
        complex_buf(),
        complex_buf(),
    )
}

fn complex_buf() -> impl Strategy<Value = Vec<C64>> {
    proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), MAX_DIM * MAX_DIM)
        .prop_map(|vals| vals.into_iter().map(|(re, im)| C64::new(re, im)).collect())
}

fn bits(v: &[C64]) -> Vec<(u64, u64)> {
    v.iter().map(|z| (z.re.to_bits(), z.im.to_bits())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_is_bit_identical_to_reference(case in case_strategy()) {
        let (m, k, n, a, b) = case;
        let (a, b) = (&a[..m * k], &b[..k * n]);
        let mut got = vec![ZERO; m * n];
        let mut want = vec![ZERO; m * n];
        kernels::matmul(a, b, &mut got, m, k, n);
        kernels::reference::matmul(a, b, &mut want, m, k, n);
        prop_assert_eq!(bits(&got), bits(&want));
    }

    #[test]
    fn dagger_matmul_is_bit_identical_to_reference(case in case_strategy()) {
        let (r, m, n, a, b) = case;
        let (a, b) = (&a[..r * m], &b[..r * n]);
        let mut got = vec![ZERO; m * n];
        let mut want = vec![ZERO; m * n];
        kernels::dagger_matmul(a, b, &mut got, r, m, n);
        kernels::reference::dagger_matmul(a, b, &mut want, r, m, n);
        prop_assert_eq!(bits(&got), bits(&want));
    }

    #[test]
    fn matmul_dagger_is_bit_identical_to_reference(case in case_strategy()) {
        let (m, k, n, a, b) = case;
        let (a, b) = (&a[..m * k], &b[..n * k]);
        let mut got = vec![ZERO; m * n];
        let mut want = vec![ZERO; m * n];
        kernels::matmul_dagger(a, b, &mut got, m, k, n);
        kernels::reference::matmul_dagger(a, b, &mut want, m, k, n);
        prop_assert_eq!(bits(&got), bits(&want));
    }

    #[test]
    fn fused_rotate_is_bit_identical_to_unfused_reference(case in case_strategy()) {
        let (n, _, _, v, m) = case;
        let (v, m) = (&v[..n * n], &m[..n * n]);
        let mut s1 = vec![ZERO; n * n];
        let mut s2 = vec![ZERO; n * n];
        let mut got = vec![ZERO; n * n];
        let mut want = vec![ZERO; n * n];
        kernels::rotate(v, m, &mut s1, &mut got, n);
        kernels::reference::rotate(v, m, &mut s2, &mut want, n);
        prop_assert_eq!(bits(&got), bits(&want));
    }

    #[test]
    fn dense_matmul_tolerates_signed_zero_sparsity(
        case in case_strategy(),
        zero_mask in 0u64..u64::MAX
    ) {
        let (m, k, n, a, b) = case;
        // The signed-zero argument of the kernel module docs, fuzzed:
        // scattering exact +0/−0 entries through A must not move output
        // bits relative to the skip-branch reference.
        let mut a = a[..m * k].to_vec();
        for (i, z) in a.iter_mut().enumerate() {
            match (zero_mask >> (i % 32)) & 0b11 {
                0b00 => *z = ZERO,
                0b01 => *z = C64::new(-0.0, 0.0),
                0b10 => *z = C64::new(0.0, -0.0),
                _ => {}
            }
        }
        let b = &b[..k * n];
        let mut got = vec![ZERO; m * n];
        let mut want = vec![ZERO; m * n];
        kernels::matmul(&a, b, &mut got, m, k, n);
        kernels::reference::matmul(&a, b, &mut want, m, k, n);
        prop_assert_eq!(bits(&got), bits(&want));
    }

    #[test]
    fn mat_entry_points_dispatch_to_bit_identical_kernels(case in case_strategy()) {
        let (m, k, n, a_data, b_data) = case;
        // The Mat wrappers (`matmul_into` & friends) must agree with the
        // raw kernels byte-for-byte — a wrapper that resized wrongly or
        // double-initialized would show up here.
        let a = Mat::from_fn(m, k, |i, j| a_data[i * k + j]);
        let b = Mat::from_fn(k, n, |i, j| b_data[i * n + j]);
        let mut out = Mat::zeros(0, 0);
        a.matmul_into(&b, &mut out);
        let mut want = vec![ZERO; m * n];
        kernels::matmul(&a_data[..m * k], &b_data[..k * n], &mut want, m, k, n);
        prop_assert_eq!(bits(out.as_slice()), bits(&want));
    }
}
