//! Property-based tests for the linear-algebra substrate.

use accqoc_linalg::{
    approx_eq_up_to_phase, eigh, expm, expm_i, global_phase_canonical, inverse, qr,
    quantized_bytes, random_unitary, sqrtm_psd, Mat, C64,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a small complex matrix with bounded entries.
fn mat_strategy(n: usize) -> impl Strategy<Value = Mat> {
    proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), n * n).prop_map(move |vals| {
        Mat::from_fn(n, n, |i, j| {
            let (re, im) = vals[i * n + j];
            C64::new(re, im)
        })
    })
}

/// Strategy: a Hermitian matrix built as `G + G†`.
fn hermitian_strategy(n: usize) -> impl Strategy<Value = Mat> {
    mat_strategy(n).prop_map(|g| &g + &g.dagger())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn expm_of_skew_hermitian_is_unitary(h in hermitian_strategy(3), t in -3.0f64..3.0) {
        let u = expm_i(&h, t).unwrap();
        prop_assert!(u.is_unitary(1e-9));
    }

    #[test]
    fn expm_inverse_property(h in hermitian_strategy(2), t in -2.0f64..2.0) {
        let u = expm_i(&h, t).unwrap();
        let v = expm_i(&h, -t).unwrap();
        prop_assert!(u.matmul(&v).approx_eq(&Mat::identity(2), 1e-9));
    }

    #[test]
    fn expm_squaring_consistency(a in mat_strategy(3)) {
        // exp(A) = exp(A/2)²
        let e1 = expm(&a).unwrap();
        let e2 = expm(&a.scale_re(0.5)).unwrap();
        let e2sq = e2.matmul(&e2);
        let norm = e1.max_abs().max(1.0);
        prop_assert!(e1.max_abs_diff(&e2sq) / norm < 1e-8);
    }

    #[test]
    fn lu_inverse_roundtrip(a in mat_strategy(4)) {
        // Shift the diagonal to keep matrices comfortably nonsingular.
        let mut m = a;
        for i in 0..4 {
            m[(i, i)] += C64::real(8.0);
        }
        let inv = inverse(&m).unwrap();
        prop_assert!(m.matmul(&inv).approx_eq(&Mat::identity(4), 1e-8));
    }

    #[test]
    fn eigh_reconstructs(h in hermitian_strategy(4)) {
        let e = eigh(&h).unwrap();
        prop_assert!(e.vectors.is_unitary(1e-8));
        let mut scaled = e.vectors.clone();
        for j in 0..4 {
            for i in 0..4 {
                scaled[(i, j)] = scaled[(i, j)].scale(e.values[j]);
            }
        }
        let rec = scaled.matmul(&e.vectors.dagger());
        prop_assert!(rec.approx_eq(&h, 1e-8));
        // Eigenvalues sorted ascending.
        for w in e.values.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-10);
        }
    }

    #[test]
    fn sqrtm_psd_squares_back(g in mat_strategy(3)) {
        let psd = g.dagger_matmul(&g);
        let r = sqrtm_psd(&psd).unwrap();
        prop_assert!(r.matmul(&r).approx_eq(&psd, 1e-7));
        prop_assert!(r.is_hermitian(1e-8));
    }

    #[test]
    fn qr_reconstructs(a in mat_strategy(4)) {
        let f = qr(&a).unwrap();
        prop_assert!(f.q.is_unitary(1e-9));
        prop_assert!(f.q.matmul(&f.r).approx_eq(&a, 1e-9));
    }

    #[test]
    fn phase_canonical_preserves_phase_class(a in mat_strategy(3), theta in 0.0f64..6.2) {
        // Skip near-zero matrices where the anchor is ill-defined.
        prop_assume!(a.max_abs() > 1e-3);
        let phased = a.scale(C64::cis(theta));
        prop_assert!(approx_eq_up_to_phase(&a, &phased, 1e-9));
        let c1 = global_phase_canonical(&a);
        let c2 = global_phase_canonical(&phased);
        prop_assert!(c1.approx_eq(&c2, 1e-9));
    }

    #[test]
    fn quantized_key_stable_under_small_noise(a in mat_strategy(2)) {
        // Quantization is necessarily unstable exactly at bucket
        // boundaries, so snap entries to bucket centers first; away from
        // boundaries, sub-resolution noise must not change the key.
        let mut snapped = a.clone();
        for z in snapped.as_mut_slice() {
            z.re = (z.re / 1e-6).round() * 1e-6;
            z.im = (z.im / 1e-6).round() * 1e-6;
        }
        let mut noisy = snapped.clone();
        for z in noisy.as_mut_slice() {
            z.re += 1e-9;
            z.im -= 1e-9;
        }
        prop_assert_eq!(quantized_bytes(&snapped, 1e-6), quantized_bytes(&noisy, 1e-6));
    }

    #[test]
    fn kron_mixed_product(a in mat_strategy(2), b in mat_strategy(2), c in mat_strategy(2), d in mat_strategy(2)) {
        // (A⊗B)(C⊗D) = (AC)⊗(BD)
        let lhs = a.kron(&b).matmul(&c.kron(&d));
        let rhs = a.matmul(&c).kron(&b.matmul(&d));
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn random_unitary_products_stay_unitary(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = random_unitary(4, &mut rng);
        let v = random_unitary(4, &mut rng);
        prop_assert!(u.matmul(&v).is_unitary(1e-8));
        prop_assert!(u.dagger().is_unitary(1e-8));
    }

    #[test]
    fn trace_cyclic_property(a in mat_strategy(3), b in mat_strategy(3)) {
        let ab = a.matmul(&b).trace();
        let ba = b.matmul(&a).trace();
        prop_assert!(ab.approx_eq(ba, 1e-9));
    }
}
