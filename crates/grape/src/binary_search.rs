//! Latency binary search.
//!
//! The paper (§IV-D): "The latency of a certain group is determined by a
//! binary search. Short latency leads to more iterations with long
//! training time and does not guarantee the convergence, while long
//! latency loses the advantages of quantum optimal control. Therefore,
//! binary search is necessary to ensure optimal latency within the target
//! fidelity convergence requirement."
//!
//! We search over the slice count `N`: first grow an upper bound until a
//! feasible pulse is found, then bisect down to the smallest feasible `N`.

use std::error::Error;
use std::fmt;

use accqoc_hw::ControlModel;
use accqoc_linalg::Mat;

use crate::grape::{solve_with, GrapeOptions, GrapeOutcome, GrapeProblem};
use crate::workspace::Workspace;

/// Search-space bounds for the latency binary search.
#[derive(Debug, Clone)]
pub struct LatencySearch {
    /// Smallest slice count to consider.
    pub min_steps: usize,
    /// Hard cap on the slice count (the "run time budget" guard of §IV-D).
    pub max_steps: usize,
    /// Warm-start each probe from the best feasible pulse found so far
    /// (resampled). Saves iterations without changing the feasibility
    /// frontier.
    pub warm_start_probes: bool,
    /// Probe this slice count first (e.g. the latency of a similar,
    /// already-compiled group). A good guess collapses the exponential
    /// growth phase: feasible ⇒ bisect straight down, infeasible ⇒ grow
    /// from there. This is where the MST ordering saves most of its
    /// compile time — similar groups have similar latencies.
    pub initial_guess: Option<usize>,
}

impl Default for LatencySearch {
    fn default() -> Self {
        Self {
            min_steps: 1,
            max_steps: 256,
            warm_start_probes: true,
            initial_guess: None,
        }
    }
}

impl LatencySearch {
    /// A search seeded by the model's analytic minimum-time estimate.
    pub fn for_model(model: &ControlModel) -> Self {
        let est = (model.min_time_estimate_ns() / model.dt_ns()).floor() as usize;
        Self {
            min_steps: (est.max(1) / 2 + 1).max(1),
            ..Self::default()
        }
    }
}

/// Failure of the latency search.
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyError {
    /// No slice count up to `max_steps` reached the fidelity target.
    Infeasible {
        /// The cap that was exhausted.
        max_steps: usize,
        /// Best infidelity observed at the cap.
        best_infidelity: f64,
    },
}

impl fmt::Display for LatencyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Infeasible { max_steps, best_infidelity } => write!(
                f,
                "no pulse up to {max_steps} steps met the fidelity target (best infidelity {best_infidelity:.2e})"
            ),
        }
    }
}

impl Error for LatencyError {}

/// Result of a successful latency search.
#[derive(Debug, Clone)]
pub struct LatencyResult {
    /// GRAPE outcome at the minimal feasible slice count.
    pub outcome: GrapeOutcome,
    /// Minimal feasible slice count.
    pub n_steps: usize,
    /// Minimal latency in nanoseconds (`n_steps · dt`).
    pub latency_ns: f64,
    /// Optimizer iterations summed over *all* probes — the compile-cost
    /// metric of the paper (§VI-G).
    pub total_iterations: usize,
    /// Every probe performed: `(n_steps, converged)`.
    pub probes: Vec<(usize, bool)>,
}

/// Finds the shortest pulse meeting the fidelity target via exponential
/// growth + bisection over the slice count.
///
/// # Errors
///
/// Returns [`LatencyError::Infeasible`] when even `search.max_steps`
/// slices cannot reach the target.
///
/// # Examples
///
/// ```
/// use accqoc_grape::{find_minimal_latency, GrapeOptions, LatencySearch};
/// use accqoc_hw::ControlModel;
/// use accqoc_linalg::Mat;
///
/// let model = ControlModel::spin_chain(1);
/// let x = Mat::from_reals(&[0.0, 1.0, 1.0, 0.0]);
/// let r = find_minimal_latency(&model, &x, &GrapeOptions::default(), &LatencySearch::default())?;
/// // A π-rotation at the amplitude cap takes 10 ns ⇒ 10 slices of 1 ns.
/// assert_eq!(r.n_steps, 10);
/// # Ok::<(), accqoc_grape::LatencyError>(())
/// ```
pub fn find_minimal_latency(
    model: &ControlModel,
    target: &Mat,
    options: &GrapeOptions,
    search: &LatencySearch,
) -> Result<LatencyResult, LatencyError> {
    find_minimal_latency_with(model, target, options, search, &mut Workspace::new())
}

/// [`find_minimal_latency_with`] seeded from an existing pulse: the
/// canonical "warm start from a similar group" entry point behind the
/// paper's MST acceleration and the pulse library's online serving path.
///
/// The seed does two things: it becomes the [`InitStrategy::Warm`]
/// initialization of every probe, and (when non-empty) its slice count
/// becomes the binary search's initial guess — similar unitaries have
/// similar minimal latencies, so the search brackets in fewer probes.
/// Passing `None` is exactly a scratch compile.
///
/// [`InitStrategy::Warm`]: crate::InitStrategy::Warm
///
/// # Errors
///
/// Returns [`LatencyError::Infeasible`] when even `search.max_steps`
/// slices cannot reach the target.
pub fn find_minimal_latency_seeded(
    model: &ControlModel,
    target: &Mat,
    seed: Option<&crate::pulse::Pulse>,
    options: &GrapeOptions,
    search: &LatencySearch,
    ws: &mut Workspace,
) -> Result<LatencyResult, LatencyError> {
    match seed {
        None => find_minimal_latency_with(model, target, options, search, ws),
        Some(pulse) => {
            let mut options = options.clone();
            options.init = crate::grape::InitStrategy::Warm(pulse.clone());
            let mut search = search.clone();
            if pulse.n_steps() > 0 {
                search.initial_guess = Some(pulse.n_steps());
            }
            find_minimal_latency_with(model, target, &options, &search, ws)
        }
    }
}

/// [`find_minimal_latency`] with a caller-owned [`Workspace`]: every
/// GRAPE probe reuses the same scratch buffers (the entry point the
/// parallel pre-compilation engine drives once per worker thread).
///
/// # Errors
///
/// Returns [`LatencyError::Infeasible`] when even `search.max_steps`
/// slices cannot reach the target.
pub fn find_minimal_latency_with(
    model: &ControlModel,
    target: &Mat,
    options: &GrapeOptions,
    search: &LatencySearch,
    ws: &mut Workspace,
) -> Result<LatencyResult, LatencyError> {
    let mut probes: Vec<(usize, bool)> = Vec::new();
    let mut total_iterations = 0usize;
    let mut warm_pulse: Option<crate::pulse::Pulse> = None;

    // The cold initialization used to establish the true feasibility
    // frontier: a caller-provided warm start is only a *hint*. Warm inits
    // inherited from other unitaries can fail at slice counts a fresh
    // start solves, and silently inflating the latency list would corrupt
    // every downstream latency number.
    let cold_init = match &options.init {
        crate::grape::InitStrategy::Warm(_) => crate::grape::InitStrategy::default(),
        other => other.clone(),
    };

    let mut probe = |n: usize, warm: &Option<crate::pulse::Pulse>| -> GrapeOutcome {
        // Warm attempt (reduced budget): converges in a fraction of the
        // cold cost when the seed is good; falls through otherwise.
        let warm_init = if search.warm_start_probes {
            warm.as_ref()
                .map(|p| crate::grape::InitStrategy::Warm(p.clone()))
                .or_else(|| match &options.init {
                    w @ crate::grape::InitStrategy::Warm(_) => Some(w.clone()),
                    _ => None,
                })
        } else {
            None
        };
        if let Some(init) = warm_init {
            let mut opts = options.clone();
            opts.init = init;
            opts.stop.max_iters = (opts.stop.max_iters / 3).max(40);
            let out = solve_with(
                &GrapeProblem {
                    model,
                    target,
                    n_steps: n,
                    options: opts,
                },
                ws,
            );
            total_iterations += out.iterations;
            if out.converged {
                probes.push((n, true));
                return out;
            }
        }
        // Cold attempt (full budget) decides feasibility.
        let mut opts = options.clone();
        opts.init = cold_init.clone();
        let out = solve_with(
            &GrapeProblem {
                model,
                target,
                n_steps: n,
                options: opts,
            },
            ws,
        );
        total_iterations += out.iterations;
        probes.push((n, out.converged));
        out
    };

    // Special case: the identity-class target may already be feasible at 0.
    let zero = probe(0, &warm_pulse);
    if zero.converged {
        return Ok(LatencyResult {
            outcome: zero,
            n_steps: 0,
            latency_ns: 0.0,
            total_iterations,
            probes,
        });
    }

    // Exponential growth until feasible.
    let mut lo = 0usize; // largest known-infeasible count
    let mut n = search.min_steps.max(1);
    let mut feasible: Option<(usize, GrapeOutcome)> = None;
    let mut best_infidelity = zero.infidelity;

    // Seeded start: probe the guess first (clamped into range).
    if let Some(guess) = search.initial_guess {
        let g = guess.clamp(1, search.max_steps);
        let out = probe(g, &warm_pulse);
        best_infidelity = best_infidelity.min(out.infidelity);
        if out.converged {
            warm_pulse = Some(out.pulse.clone());
            feasible = Some((g, out));
            // One probe at the growth start tells us which side of it the
            // boundary lies on, cheaply narrowing the bisection range
            // (without it a good guess costs a cascade of low-N probes).
            let m = search.min_steps.min(g.saturating_sub(1));
            if m == g.saturating_sub(1) && m >= 1 {
                // The search floor sits right under the guess (the
                // seed-anchored serving window): descend one slice at a
                // time while the shorter probe keeps converging. Each
                // converging probe is cheap (warm-started from the pulse
                // one slice longer); the first failure is the tight lower
                // bound. A near-identical seed costs exactly one extra
                // probe, and a beatable seed walks to the true minimum
                // without re-opening the bisection over the
                // deep-infeasible region the floor exists to prune.
                let mut h = g;
                while h > 1 {
                    let out_d = probe(h - 1, &warm_pulse);
                    if !out_d.converged {
                        lo = h - 1;
                        break;
                    }
                    warm_pulse = Some(out_d.pulse.clone());
                    h -= 1;
                    feasible = Some((h, out_d));
                }
            } else if m >= 1 {
                let out_m = probe(m, &warm_pulse);
                if out_m.converged {
                    warm_pulse = Some(out_m.pulse.clone());
                    feasible = Some((m, out_m));
                } else {
                    lo = m;
                }
            }
        } else if g >= search.max_steps {
            return Err(LatencyError::Infeasible {
                max_steps: search.max_steps,
                best_infidelity,
            });
        } else {
            // A seeded guess is rarely off by much: try one slice longer
            // before falling back to exponential growth — similar groups
            // have similar minimal latencies, so the boundary usually
            // sits adjacent to the seed and the +1 probe converges,
            // collapsing the whole bracket in one step.
            let out_up = probe(g + 1, &warm_pulse);
            best_infidelity = best_infidelity.min(out_up.infidelity);
            if out_up.converged {
                warm_pulse = Some(out_up.pulse.clone());
                feasible = Some((g + 1, out_up));
                lo = g;
            } else {
                lo = g + 1;
            }
            n = (g * 2).min(search.max_steps).max(1);
        }
    }

    while feasible.is_none() {
        let out = probe(n, &warm_pulse);
        best_infidelity = best_infidelity.min(out.infidelity);
        if out.converged {
            warm_pulse = Some(out.pulse.clone());
            feasible = Some((n, out));
            break;
        }
        lo = n;
        if n >= search.max_steps {
            return Err(LatencyError::Infeasible {
                max_steps: search.max_steps,
                best_infidelity,
            });
        }
        n = (n * 2).min(search.max_steps);
    }
    let (mut hi, mut best_out) = feasible.expect("loop establishes feasibility or errors");

    // Bisection on (lo, hi].
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let out = probe(mid, &warm_pulse);
        if out.converged {
            hi = mid;
            warm_pulse = Some(out.pulse.clone());
            best_out = out;
        } else {
            lo = mid;
        }
    }

    Ok(LatencyResult {
        latency_ns: hi as f64 * model.dt_ns(),
        n_steps: hi,
        outcome: best_out,
        total_iterations,
        probes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use accqoc_circuit::{circuit_unitary, Circuit, Gate};

    #[test]
    fn x_gate_min_latency_is_ten_ns() {
        let model = ControlModel::spin_chain(1);
        let x = Mat::from_reals(&[0.0, 1.0, 1.0, 0.0]);
        let r = find_minimal_latency(
            &model,
            &x,
            &GrapeOptions::default(),
            &LatencySearch::default(),
        )
        .unwrap();
        // π/(Ω_max) = 10 ns exactly at the amplitude bound.
        assert_eq!(r.n_steps, 10, "probes: {:?}", r.probes);
        assert!((r.latency_ns - 10.0).abs() < 1e-12);
        assert!(r.outcome.converged);
        assert!(r.total_iterations > 0);
    }

    #[test]
    fn identity_needs_zero_steps() {
        let model = ControlModel::spin_chain(1);
        let r = find_minimal_latency(
            &model,
            &Mat::identity(2),
            &GrapeOptions::default(),
            &LatencySearch::default(),
        )
        .unwrap();
        assert_eq!(r.n_steps, 0);
        assert_eq!(r.latency_ns, 0.0);
    }

    #[test]
    fn rotation_shorter_than_pi_needs_fewer_steps() {
        let model = ControlModel::spin_chain(1);
        let rz = circuit_unitary(&Circuit::from_gates(
            1,
            [Gate::Rx(0, std::f64::consts::PI / 2.0)],
        ));
        let r = find_minimal_latency(
            &model,
            &rz,
            &GrapeOptions::default(),
            &LatencySearch::default(),
        )
        .unwrap();
        assert!(
            r.n_steps <= 6,
            "π/2 rotation should need ≈5 steps, got {}",
            r.n_steps
        );
        assert!(r.n_steps >= 4);
    }

    #[test]
    fn infeasible_when_cap_too_small() {
        let model = ControlModel::spin_chain(1);
        let x = Mat::from_reals(&[0.0, 1.0, 1.0, 0.0]);
        let e = find_minimal_latency(
            &model,
            &x,
            &GrapeOptions::default(),
            &LatencySearch {
                min_steps: 1,
                max_steps: 6,
                ..LatencySearch::default()
            },
        )
        .unwrap_err();
        match e {
            LatencyError::Infeasible {
                max_steps,
                best_infidelity,
            } => {
                assert_eq!(max_steps, 6);
                assert!(best_infidelity > 1e-4);
            }
        }
    }

    #[test]
    fn workspace_reaches_capacity_fixed_point_across_searches() {
        // The serve path runs thousands of latency searches against one
        // leased workspace; after the first search has warmed the buffers
        // a repeat search must not grow any of them (the documented
        // workspace-capacity invariant behind the allocation-free steady
        // state) — and must reproduce the identical pulse.
        let model = ControlModel::spin_chain(1);
        let x = Mat::from_reals(&[0.0, 1.0, 1.0, 0.0]);
        let mut ws = Workspace::new();
        let opts = GrapeOptions::default();
        let search = LatencySearch::default();
        let r1 = find_minimal_latency_with(&model, &x, &opts, &search, &mut ws).unwrap();
        let snapshot = (
            ws.step_us.len(),
            ws.fwd.len(),
            ws.bwd.len(),
            ws.eigs.len(),
            ws.amps.len(),
        );
        let r2 = find_minimal_latency_with(&model, &x, &opts, &search, &mut ws).unwrap();
        assert_eq!(
            snapshot,
            (
                ws.step_us.len(),
                ws.fwd.len(),
                ws.bwd.len(),
                ws.eigs.len(),
                ws.amps.len(),
            ),
            "repeat search grew workspace buffers"
        );
        assert_eq!(r1.n_steps, r2.n_steps);
        assert_eq!(r1.outcome.pulse, r2.outcome.pulse, "ws reuse moved bits");
    }

    #[test]
    fn probes_are_recorded_and_monotone_consistent() {
        let model = ControlModel::spin_chain(1);
        let x = Mat::from_reals(&[0.0, 1.0, 1.0, 0.0]);
        let r = find_minimal_latency(
            &model,
            &x,
            &GrapeOptions::default(),
            &LatencySearch::default(),
        )
        .unwrap();
        // Every probe below the answer must be infeasible; at/above: mostly feasible.
        for &(n, ok) in &r.probes {
            if n < r.n_steps {
                assert!(
                    !ok,
                    "probe at {n} should be infeasible (answer {})",
                    r.n_steps
                );
            }
        }
        assert!(r.probes.iter().any(|&(n, ok)| n == r.n_steps && ok));
    }
}
