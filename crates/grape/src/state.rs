//! State-to-state transfer GRAPE.
//!
//! Quantum optimal control "could directly compile quantum state transfer
//! or a functional unitary matrix" (paper §I). The unitary form drives
//! AccQOC; this module provides the state-transfer objective
//! `1 − |⟨ψ_target|X_N|ψ_0⟩|²` with exact spectral gradients, sharing the
//! propagation and optimizer machinery.

use accqoc_hw::ControlModel;
use accqoc_linalg::{eigh, Mat, C64};

use crate::grape::{krein_weights, spectral_propagator, GrapeOptions, InitStrategy};
use crate::propagate::step_unitaries;
use crate::pulse::Pulse;

/// A state-transfer problem: steer `initial` to `target` (both unit-norm
/// column vectors of the model dimension) in `n_steps` slices.
#[derive(Debug, Clone)]
pub struct StateTransferProblem<'a> {
    /// Device model.
    pub model: &'a ControlModel,
    /// Initial state (column, `dim × 1`).
    pub initial: Mat,
    /// Target state (column, `dim × 1`).
    pub target: Mat,
    /// Number of time slices.
    pub n_steps: usize,
    /// Solver configuration (shared with the unitary solver).
    pub options: GrapeOptions,
}

/// Outcome of a state-transfer optimization.
#[derive(Debug, Clone)]
pub struct StateTransferOutcome {
    /// The optimized pulse.
    pub pulse: Pulse,
    /// Final infidelity `1 − |⟨ψ_t|X_N|ψ_0⟩|²`.
    pub infidelity: f64,
    /// Optimizer iterations.
    pub iterations: usize,
    /// Whether the fidelity target was met.
    pub converged: bool,
}

/// State-transfer infidelity of a pulse on a model.
pub fn state_infidelity(model: &ControlModel, pulse: &Pulse, initial: &Mat, target: &Mat) -> f64 {
    let us = step_unitaries(model, pulse);
    let mut x = initial.clone();
    for u in &us {
        x = u.matmul(&x);
    }
    let overlap = target.hs_inner(&x);
    (1.0 - overlap.norm_sqr()).max(0.0)
}

/// Runs GRAPE on a state-transfer problem.
///
/// # Panics
///
/// Panics if the state vectors are not unit-norm columns of the model
/// dimension.
///
/// # Examples
///
/// ```
/// use accqoc_grape::{solve_state_transfer, GrapeOptions, StateTransferProblem};
/// use accqoc_hw::ControlModel;
/// use accqoc_linalg::{C64, Mat};
///
/// // Flip |0⟩ to |1⟩ on a single qubit.
/// let model = ControlModel::spin_chain(1);
/// let zero = Mat::from_fn(2, 1, |i, _| if i == 0 { C64::real(1.0) } else { C64::real(0.0) });
/// let one = Mat::from_fn(2, 1, |i, _| if i == 1 { C64::real(1.0) } else { C64::real(0.0) });
/// let out = solve_state_transfer(&StateTransferProblem {
///     model: &model,
///     initial: zero,
///     target: one,
///     n_steps: 12,
///     options: GrapeOptions::default(),
/// });
/// assert!(out.converged);
/// ```
pub fn solve_state_transfer(problem: &StateTransferProblem<'_>) -> StateTransferOutcome {
    let model = problem.model;
    let dim = model.dim();
    for (name, v) in [("initial", &problem.initial), ("target", &problem.target)] {
        assert_eq!(v.rows(), dim, "{name} state dimension");
        assert_eq!(v.cols(), 1, "{name} state must be a column vector");
        assert!(
            (v.frobenius_norm() - 1.0).abs() < 1e-9,
            "{name} state must be unit norm"
        );
    }
    let n_ctrl = model.n_controls();
    let n_steps = problem.n_steps;
    let dt = model.dt_ns();

    if n_steps == 0 {
        let inf = {
            let overlap = problem.target.hs_inner(&problem.initial);
            (1.0 - overlap.norm_sqr()).max(0.0)
        };
        return StateTransferOutcome {
            pulse: Pulse::zeros(n_ctrl, 0, dt),
            infidelity: inf,
            iterations: 0,
            converged: inf <= problem.options.stop.target_cost,
        };
    }

    let x0 = match &problem.options.init {
        InitStrategy::Zero => vec![0.0; n_ctrl * n_steps],
        InitStrategy::Random { scale, seed } => {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(*seed);
            let bounds: Vec<f64> = model.channels().iter().map(|c| c.max_amp).collect();
            (0..n_ctrl * n_steps)
                .map(|i| rng.gen_range(-1.0..1.0) * scale * bounds[i / n_steps])
                .collect()
        }
        InitStrategy::Warm(p) => p.resampled(n_steps).to_params(),
    };

    let mut objective = |params: &[f64]| -> (f64, Vec<f64>) {
        state_cost_and_gradient(model, &problem.initial, &problem.target, params, n_steps)
    };
    let bounds: Vec<f64> = model.channels().iter().map(|c| c.max_amp).collect();
    let project = move |params: &mut [f64]| {
        for (i, p) in params.iter_mut().enumerate() {
            let b = bounds[i / n_steps];
            *p = p.clamp(-b, b);
        }
    };
    let optimizer = problem.options.optimizer.build();
    let result = optimizer.minimize(&mut objective, Some(&project), x0, &problem.options.stop);

    StateTransferOutcome {
        pulse: Pulse::from_params(&result.x, n_ctrl, n_steps, dt),
        infidelity: result.cost,
        iterations: result.iterations,
        converged: result.converged,
    }
}

fn state_cost_and_gradient(
    model: &ControlModel,
    initial: &Mat,
    target: &Mat,
    params: &[f64],
    n_steps: usize,
) -> (f64, Vec<f64>) {
    let dim = model.dim();
    let n_ctrl = model.n_controls();
    let dt = model.dt_ns();
    let pulse = Pulse::from_params(params, n_ctrl, n_steps, dt);

    // Spectral propagators and forward state vectors x_k = X_k|ψ0⟩.
    let mut eigs = Vec::with_capacity(n_steps);
    let mut fwd: Vec<Mat> = Vec::with_capacity(n_steps + 1);
    fwd.push(initial.clone());
    for k in 0..n_steps {
        let h = model.hamiltonian(&pulse.step_amps(k));
        let eig = eigh(&h).expect("hermitian hamiltonian");
        let u = spectral_propagator(&eig, dt);
        let next = u.matmul(fwd.last().expect("non-empty"));
        fwd.push(next);
        eigs.push((eig, u));
    }
    // Backward vectors w_k with ⟨w_k| = ⟨ψ_t|U_N ⋯ U_{k+1}: w_N = ψ_t,
    // w_k = U_{k+1}†·w_{k+1}.
    let mut bwd = vec![target.clone(); n_steps + 1];
    for k in (0..n_steps).rev() {
        bwd[k] = eigs[k].1.dagger_matmul(&bwd[k + 1]);
    }

    let phi = target.hs_inner(&fwd[n_steps]); // ⟨ψ_t|X_N|ψ0⟩
    let cost = (1.0 - phi.norm_sqr()).max(0.0);

    let mut grad = vec![0.0; n_ctrl * n_steps];
    for k in 0..n_steps {
        let (eig, _) = &eigs[k];
        let v = &eig.vectors;
        let w = krein_weights(&eig.values, dt);
        // Work in the eigenbasis: dφ = ⟨w_{k+1}| dU |x_k⟩ with
        // dU = V (W ∘ Ĥ_j) V†.
        let x_tilde = v.dagger_matmul(&fwd[k]); // V†|x_k⟩
        let w_tilde = v.dagger_matmul(&bwd[k + 1]); // V†|w_{k+1}⟩
        for (j, ch) in model.channels().iter().enumerate() {
            let hj_tilde = v.dagger_matmul(&ch.hamiltonian).matmul(v);
            // dφ = Σ_{a,b} conj(w̃_a) · W_{ab}·Ĥ_{ab} · x̃_b
            let mut dphi = C64::real(0.0);
            for a in 0..dim {
                for b in 0..dim {
                    dphi += w_tilde[(a, 0)].conj() * w[(a, b)] * hj_tilde[(a, b)] * x_tilde[(b, 0)];
                }
            }
            grad[j * n_steps + k] = -2.0 * (phi.conj() * dphi).re;
        }
    }
    (cost, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use accqoc_linalg::ZERO;

    fn basis_state(dim: usize, idx: usize) -> Mat {
        Mat::from_fn(dim, 1, |i, _| if i == idx { C64::real(1.0) } else { ZERO })
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let model = ControlModel::spin_chain(1);
        let zero = basis_state(2, 0);
        let one = basis_state(2, 1);
        let n_steps = 6;
        let params: Vec<f64> = (0..12)
            .map(|i| ((i * 13 % 7) as f64 / 7.0 - 0.5) * 0.8)
            .collect();
        let (c0, g) = state_cost_and_gradient(&model, &zero, &one, &params, n_steps);
        let h = 1e-6;
        for i in 0..params.len() {
            let mut p = params.clone();
            p[i] += h;
            let (c1, _) = state_cost_and_gradient(&model, &zero, &one, &p, n_steps);
            let fd = (c1 - c0) / h;
            assert!(
                (fd - g[i]).abs() < 1e-4 * (1.0 + fd.abs()),
                "param {i}: {fd} vs {}",
                g[i]
            );
        }
    }

    #[test]
    fn spin_flip_converges_at_ten_ns() {
        let model = ControlModel::spin_chain(1);
        let out = solve_state_transfer(&StateTransferProblem {
            model: &model,
            initial: basis_state(2, 0),
            target: basis_state(2, 1),
            n_steps: 10,
            options: GrapeOptions::default(),
        });
        assert!(out.converged, "infidelity {}", out.infidelity);
        // Replay check.
        let inf = state_infidelity(&model, &out.pulse, &basis_state(2, 0), &basis_state(2, 1));
        assert!(inf <= 1.2e-4);
    }

    #[test]
    fn spin_flip_infeasible_below_minimum_time() {
        let model = ControlModel::spin_chain(1);
        let out = solve_state_transfer(&StateTransferProblem {
            model: &model,
            initial: basis_state(2, 0),
            target: basis_state(2, 1),
            n_steps: 5,
            options: GrapeOptions::default(),
        });
        assert!(!out.converged, "5 ns cannot complete a π rotation");
    }

    #[test]
    fn bell_state_preparation() {
        // |00⟩ → (|00⟩ + |11⟩)/√2 on the coupled 2-qubit model.
        let model = ControlModel::spin_chain(2);
        let r = std::f64::consts::FRAC_1_SQRT_2;
        let bell = Mat::from_fn(4, 1, |i, _| match i {
            0 | 3 => C64::real(r),
            _ => ZERO,
        });
        let out = solve_state_transfer(&StateTransferProblem {
            model: &model,
            initial: basis_state(4, 0),
            target: bell,
            n_steps: 30,
            options: GrapeOptions::default().with_max_iters(600),
        });
        assert!(out.converged, "bell prep infidelity {}", out.infidelity);
    }

    #[test]
    fn zero_steps_identity_transfer() {
        let model = ControlModel::spin_chain(1);
        let out = solve_state_transfer(&StateTransferProblem {
            model: &model,
            initial: basis_state(2, 0),
            target: basis_state(2, 0),
            n_steps: 0,
            options: GrapeOptions::default(),
        });
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
    }

    #[test]
    #[should_panic(expected = "unit norm")]
    fn non_normalized_state_rejected() {
        let model = ControlModel::spin_chain(1);
        let bad = Mat::from_fn(2, 1, |_, _| C64::real(1.0));
        let _ = solve_state_transfer(&StateTransferProblem {
            model: &model,
            initial: bad.clone(),
            target: bad,
            n_steps: 4,
            options: GrapeOptions::default(),
        });
    }

    #[test]
    fn state_transfer_needs_fewer_steps_than_full_unitary() {
        // Steering one state is weaker than realizing a full gate: the
        // Hadamard *state* |0⟩→|+⟩ is a π/2 rotation (≈5 ns), while the
        // full H gate needs a π rotation's worth of time.
        let model = ControlModel::spin_chain(1);
        let r = std::f64::consts::FRAC_1_SQRT_2;
        let plus = Mat::from_fn(2, 1, |_, _| C64::real(r));
        let out = solve_state_transfer(&StateTransferProblem {
            model: &model,
            initial: basis_state(2, 0),
            target: plus,
            n_steps: 6,
            options: GrapeOptions::default(),
        });
        assert!(
            out.converged,
            "π/2-worth of steering fits in 6 ns: {}",
            out.infidelity
        );
    }
}
