//! Reusable GRAPE scratch buffers.
//!
//! Every objective evaluation propagates `N` slice unitaries forward and
//! backward; done naively that allocates a few dozen small matrices per
//! iteration, and a full latency binary search performs thousands of
//! iterations. A [`Workspace`] owns those buffers once, so repeated
//! solves — in particular the per-thread compile loops of the parallel
//! pre-compilation engine — run allocation-free on the steady state.
//!
//! Workspaces are plain owned data: create one per thread (they are
//! `Send` but deliberately not shared) and pass it to
//! [`solve_with`](crate::solve_with) or
//! [`find_minimal_latency_with`](crate::find_minimal_latency_with).
//! The convenience wrappers [`solve`](crate::solve) and
//! [`find_minimal_latency`](crate::find_minimal_latency) create a
//! throwaway workspace internally and produce bit-identical results.

use accqoc_linalg::{EigH, EighWorkspace, Mat};

/// Per-thread scratch space for GRAPE objective evaluations.
///
/// All buffers are resized on demand, so one workspace serves problems of
/// any dimension and slice count; reuse across solves only skips the
/// allocations, never changes a result.
///
/// # Examples
///
/// ```
/// use accqoc_grape::{solve_with, GrapeOptions, GrapeProblem, Workspace};
/// use accqoc_hw::ControlModel;
/// use accqoc_linalg::Mat;
///
/// let model = ControlModel::spin_chain(1);
/// let x = Mat::from_reals(&[0.0, 1.0, 1.0, 0.0]);
/// let mut ws = Workspace::new();
/// let out = solve_with(
///     &GrapeProblem { model: &model, target: &x, n_steps: 12, options: GrapeOptions::default() },
///     &mut ws,
/// );
/// assert!(out.converged);
/// ```
#[derive(Debug)]
pub struct Workspace {
    /// Step propagators `U_1 … U_N`.
    pub(crate) step_us: Vec<Mat>,
    /// Forward states `X_0 … X_N`.
    pub(crate) fwd: Vec<Mat>,
    /// Backward states `B_0 … B_N`.
    pub(crate) bwd: Vec<Mat>,
    /// Per-slice eigendecompositions (spectral gradients), reused by
    /// index across objective evaluations.
    pub(crate) eigs: Vec<EigH>,
    /// Eigensolver scratch (Jacobi working copy + sort permutation).
    pub(crate) eig_ws: EighWorkspace,
    /// Per-slice control amplitudes.
    pub(crate) amps: Vec<f64>,
    /// Slice Hamiltonian.
    pub(crate) h: Mat,
    /// `X_{k−1}·B_k` product.
    pub(crate) m: Mat,
    /// `V†·M·V` (the product rotated into the slice eigenbasis).
    pub(crate) mt: Mat,
    /// General matmul scratch.
    pub(crate) tmp: Mat,
    /// `V†·H_j·V` control Hamiltonian in the slice eigenbasis.
    pub(crate) hj_tilde: Mat,
    /// Daleckii–Krein divided-difference weights.
    pub(crate) w: Mat,
}

impl Workspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self {
            step_us: Vec::new(),
            fwd: Vec::new(),
            bwd: Vec::new(),
            eigs: Vec::new(),
            eig_ws: EighWorkspace::new(),
            amps: Vec::new(),
            h: Mat::zeros(0, 0),
            m: Mat::zeros(0, 0),
            mt: Mat::zeros(0, 0),
            tmp: Mat::zeros(0, 0),
            hj_tilde: Mat::zeros(0, 0),
            w: Mat::zeros(0, 0),
        }
    }

    /// Grows the per-slice buffer vectors to cover `n_steps` slices of a
    /// `dim`-dimensional problem with `n_ctrl` control channels. Matrix
    /// shapes are corrected lazily by the `*_into` kernels.
    pub(crate) fn ensure(&mut self, dim: usize, n_ctrl: usize, n_steps: usize) {
        self.amps.resize(n_ctrl, 0.0);
        if self.step_us.len() < n_steps {
            self.step_us.resize_with(n_steps, || Mat::zeros(dim, dim));
        }
        if self.fwd.len() < n_steps + 1 {
            self.fwd.resize_with(n_steps + 1, || Mat::zeros(dim, dim));
        }
        if self.bwd.len() < n_steps + 1 {
            self.bwd.resize_with(n_steps + 1, || Mat::zeros(dim, dim));
        }
        if self.eigs.len() < n_steps {
            self.eigs.resize_with(n_steps, || EigH {
                values: Vec::new(),
                vectors: Mat::zeros(0, 0),
            });
        }
    }

    /// Copies slice `k`'s amplitudes out of the flat channel-major
    /// parameter vector into the `amps` scratch.
    pub(crate) fn load_amps(&mut self, params: &[f64], n_steps: usize, k: usize) {
        for (j, a) in self.amps.iter_mut().enumerate() {
            *a = params[j * n_steps + k];
        }
    }
}

impl Default for Workspace {
    fn default() -> Self {
        Self::new()
    }
}
