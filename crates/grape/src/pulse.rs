//! Piecewise-constant control pulses.
//!
//! A pulse is the artifact AccQOC produces and caches: per control
//! channel, a sequence of amplitudes held constant over slices of width
//! `dt`. The paper's warm-start acceleration (§V) seeds GRAPE with the
//! pulse of a similar group, which requires resampling onto a different
//! step count — provided here.

/// A piecewise-constant multi-channel control pulse.
///
/// # Examples
///
/// ```
/// use accqoc_grape::Pulse;
///
/// let mut p = Pulse::zeros(2, 10, 1.0);
/// p.set(0, 3, 0.5);
/// assert_eq!(p.amp(0, 3), 0.5);
/// assert_eq!(p.latency_ns(), 10.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Pulse {
    /// `amps[channel][step]`.
    amps: Vec<Vec<f64>>,
    dt_ns: f64,
}

impl Pulse {
    /// All-zero pulse with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `dt_ns <= 0` or `n_controls == 0`.
    pub fn zeros(n_controls: usize, n_steps: usize, dt_ns: f64) -> Self {
        assert!(dt_ns > 0.0, "dt must be positive");
        assert!(n_controls > 0, "need at least one control channel");
        Self {
            amps: vec![vec![0.0; n_steps]; n_controls],
            dt_ns,
        }
    }

    /// Builds a pulse from explicit per-channel amplitude rows.
    ///
    /// # Panics
    ///
    /// Panics on ragged rows, empty channel list, or non-positive `dt_ns`.
    pub fn from_amps(amps: Vec<Vec<f64>>, dt_ns: f64) -> Self {
        assert!(dt_ns > 0.0, "dt must be positive");
        assert!(!amps.is_empty(), "need at least one control channel");
        let steps = amps[0].len();
        assert!(
            amps.iter().all(|row| row.len() == steps),
            "ragged amplitude rows"
        );
        Self { amps, dt_ns }
    }

    /// Number of control channels.
    pub fn n_controls(&self) -> usize {
        self.amps.len()
    }

    /// Number of time slices.
    pub fn n_steps(&self) -> usize {
        self.amps[0].len()
    }

    /// Slice width in nanoseconds.
    pub fn dt_ns(&self) -> f64 {
        self.dt_ns
    }

    /// Total pulse duration in nanoseconds.
    pub fn latency_ns(&self) -> f64 {
        self.n_steps() as f64 * self.dt_ns
    }

    /// Amplitude of `channel` during `step`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn amp(&self, channel: usize, step: usize) -> f64 {
        self.amps[channel][step]
    }

    /// Sets one amplitude.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn set(&mut self, channel: usize, step: usize, value: f64) {
        self.amps[channel][step] = value;
    }

    /// Amplitude row of one channel.
    pub fn channel(&self, channel: usize) -> &[f64] {
        &self.amps[channel]
    }

    /// Amplitudes of every channel at one time step.
    pub fn step_amps(&self, step: usize) -> Vec<f64> {
        self.amps.iter().map(|row| row[step]).collect()
    }

    /// Flattens to the GRAPE parameter vector layout
    /// (`[channel-major]`: channel 0 steps, channel 1 steps, …).
    pub fn to_params(&self) -> Vec<f64> {
        self.amps.iter().flatten().copied().collect()
    }

    /// Rebuilds a pulse from the flat parameter layout of
    /// [`Pulse::to_params`].
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != n_controls * n_steps`.
    pub fn from_params(params: &[f64], n_controls: usize, n_steps: usize, dt_ns: f64) -> Self {
        assert_eq!(params.len(), n_controls * n_steps, "parameter count");
        let amps = (0..n_controls)
            .map(|c| params[c * n_steps..(c + 1) * n_steps].to_vec())
            .collect();
        Self::from_amps(amps, dt_ns)
    }

    /// Resamples onto `new_steps` slices by linear interpolation of each
    /// channel, preserving `dt` (the pulse *duration* changes). This is
    /// how a parent group's pulse seeds a child with a different latency
    /// in the MST warm start.
    ///
    /// # Panics
    ///
    /// Panics if `new_steps == 0`.
    pub fn resampled(&self, new_steps: usize) -> Pulse {
        assert!(new_steps > 0, "cannot resample to zero steps");
        let old = self.n_steps();
        if old == new_steps {
            return self.clone();
        }
        let mut out = Pulse::zeros(self.n_controls(), new_steps, self.dt_ns);
        for c in 0..self.n_controls() {
            for k in 0..new_steps {
                let v = if old == 0 {
                    0.0
                } else if old == 1 {
                    self.amps[c][0]
                } else {
                    // Sample positions at slice centers, mapped proportionally.
                    let pos = (k as f64 + 0.5) / new_steps as f64 * old as f64 - 0.5;
                    let pos = pos.clamp(0.0, (old - 1) as f64);
                    let lo = pos.floor() as usize;
                    let hi = (lo + 1).min(old - 1);
                    let frac = pos - lo as f64;
                    self.amps[c][lo] * (1.0 - frac) + self.amps[c][hi] * frac
                };
                out.amps[c][k] = v;
            }
        }
        out
    }

    /// Concatenates another pulse after this one (channel counts and `dt`
    /// must match). Gate-based compilation is exactly this operation over
    /// a lookup table.
    ///
    /// # Panics
    ///
    /// Panics on channel-count or `dt` mismatch.
    pub fn concat(&self, other: &Pulse) -> Pulse {
        assert_eq!(
            self.n_controls(),
            other.n_controls(),
            "channel count mismatch"
        );
        assert!((self.dt_ns - other.dt_ns).abs() < 1e-12, "dt mismatch");
        let amps = self
            .amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| {
                let mut row = a.clone();
                row.extend_from_slice(b);
                row
            })
            .collect();
        Pulse::from_amps(amps, self.dt_ns)
    }

    /// Largest absolute amplitude across all channels and steps.
    pub fn max_abs_amp(&self) -> f64 {
        self.amps
            .iter()
            .flatten()
            .fold(0.0f64, |m, &v| m.max(v.abs()))
    }

    /// Total pulse energy proxy: `Σ u² · dt`.
    pub fn energy(&self) -> f64 {
        self.amps.iter().flatten().map(|&v| v * v).sum::<f64>() * self.dt_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_latency() {
        let p = Pulse::zeros(4, 25, 0.5);
        assert_eq!(p.n_controls(), 4);
        assert_eq!(p.n_steps(), 25);
        assert!((p.latency_ns() - 12.5).abs() < 1e-12);
    }

    #[test]
    fn params_roundtrip() {
        let mut p = Pulse::zeros(2, 3, 1.0);
        p.set(0, 0, 1.0);
        p.set(1, 2, -0.5);
        let params = p.to_params();
        assert_eq!(params, vec![1.0, 0.0, 0.0, 0.0, 0.0, -0.5]);
        let q = Pulse::from_params(&params, 2, 3, 1.0);
        assert_eq!(p, q);
    }

    #[test]
    fn resample_identity_when_same_steps() {
        let p = Pulse::from_amps(vec![vec![1.0, 2.0, 3.0]], 1.0);
        assert_eq!(p.resampled(3), p);
    }

    #[test]
    fn resample_preserves_constant_pulses() {
        let p = Pulse::from_amps(vec![vec![0.7; 8]], 1.0);
        let q = p.resampled(13);
        for k in 0..13 {
            assert!((q.amp(0, k) - 0.7).abs() < 1e-12);
        }
        let r = p.resampled(3);
        for k in 0..3 {
            assert!((r.amp(0, k) - 0.7).abs() < 1e-12);
        }
    }

    #[test]
    fn resample_interpolates_ramps() {
        // A linear ramp stays (approximately) a linear ramp.
        let p = Pulse::from_amps(vec![(0..10).map(|k| k as f64).collect()], 1.0);
        let q = p.resampled(19);
        for k in 1..19 {
            assert!(
                q.amp(0, k) >= q.amp(0, k - 1) - 1e-12,
                "monotone ramp broken at {k}"
            );
        }
        assert!(q.amp(0, 0) <= 1.0);
        assert!(q.amp(0, 18) >= 8.0);
    }

    #[test]
    fn resample_single_step_extends() {
        let p = Pulse::from_amps(vec![vec![0.3]], 1.0);
        let q = p.resampled(5);
        for k in 0..5 {
            assert_eq!(q.amp(0, k), 0.3);
        }
    }

    #[test]
    fn concat_appends_steps() {
        let a = Pulse::from_amps(vec![vec![1.0, 1.0]], 1.0);
        let b = Pulse::from_amps(vec![vec![2.0]], 1.0);
        let c = a.concat(&b);
        assert_eq!(c.n_steps(), 3);
        assert_eq!(c.channel(0), &[1.0, 1.0, 2.0]);
        assert!((c.latency_ns() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn energy_and_max_amp() {
        let p = Pulse::from_amps(vec![vec![1.0, -2.0], vec![0.0, 0.5]], 2.0);
        assert!((p.max_abs_amp() - 2.0).abs() < 1e-12);
        assert!((p.energy() - (1.0 + 4.0 + 0.25) * 2.0).abs() < 1e-12);
    }

    #[test]
    fn step_amps_collects_across_channels() {
        let p = Pulse::from_amps(vec![vec![1.0, 2.0], vec![3.0, 4.0]], 1.0);
        assert_eq!(p.step_amps(1), vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Pulse::from_amps(vec![vec![1.0], vec![1.0, 2.0]], 1.0);
    }

    #[test]
    #[should_panic(expected = "dt mismatch")]
    fn concat_dt_mismatch_panics() {
        let a = Pulse::zeros(1, 2, 1.0);
        let b = Pulse::zeros(1, 2, 0.5);
        let _ = a.concat(&b);
    }
}
