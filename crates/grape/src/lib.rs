//! GRAPE — GRadient Ascent Pulse Engineering — for the AccQOC
//! reproduction.
//!
//! Implements quantum optimal control over the piecewise-constant pulse
//! model of the paper (§II-D): forward/backward propagation through
//! `exp(−iΔt·H)` slices, analytic gradients (first-order and exact
//! Fréchet), projected L-BFGS/Adam optimizers, the `1e-4` fidelity target,
//! and the latency binary search of §IV-D. Warm starts from a similar
//! group's pulse — the heart of AccQOC's MST acceleration — enter through
//! [`InitStrategy::Warm`].
//!
//! # Example
//!
//! ```
//! use accqoc_grape::{solve, GrapeOptions, GrapeProblem};
//! use accqoc_hw::ControlModel;
//! use accqoc_linalg::Mat;
//!
//! let model = ControlModel::spin_chain(1);
//! let x = Mat::from_reals(&[0.0, 1.0, 1.0, 0.0]);
//! let out = solve(&GrapeProblem {
//!     model: &model,
//!     target: &x,
//!     n_steps: 12,
//!     options: GrapeOptions::default(),
//! });
//! assert!(out.converged);
//! ```

#![warn(missing_docs)]

mod analysis;
mod binary_search;
mod grape;
mod optimizer;
mod propagate;
mod pulse;
mod state;
mod workspace;

pub use analysis::{max_slew_rate, mean_power, pulse_shape, total_variation, PulseShape};
pub use binary_search::{
    find_minimal_latency, find_minimal_latency_seeded, find_minimal_latency_with, LatencyError,
    LatencyResult, LatencySearch,
};
pub use grape::{
    cost_and_gradient_into, infidelity, solve, solve_with, GradientMethod, GrapeOptions,
    GrapeOutcome, GrapeProblem, InitStrategy,
};
pub use optimizer::{Adam, Lbfgs, Momentum, OptimResult, Optimizer, OptimizerKind, StopCriteria};
pub use propagate::{
    backward_states, forward_states, realized_infidelity, step_unitaries, total_unitary,
};
pub use pulse::Pulse;
pub use state::{
    solve_state_transfer, state_infidelity, StateTransferOutcome, StateTransferProblem,
};
pub use workspace::Workspace;
