//! Gradient-based optimizers for GRAPE.
//!
//! The paper's GRAPE tool offers "ADAM, BFGS, L-BFGS-B, and SLSQP" and the
//! authors "choose BFGS" (§IV-D). We provide Adam, momentum gradient
//! descent, and L-BFGS with projected bounds (the `-B` part) — the
//! limited-memory form is what any modern BFGS implementation runs on
//! problems with hundreds of parameters.

/// Stopping criteria shared by all optimizers.
#[derive(Debug, Clone)]
pub struct StopCriteria {
    /// Hard iteration cap.
    pub max_iters: usize,
    /// Stop as soon as the cost drops to this value (GRAPE's fidelity
    /// target, `1e-4` in the paper).
    pub target_cost: f64,
    /// Stop when the gradient ∞-norm falls below this (stationary point).
    pub grad_tol: f64,
    /// Give up after this many iterations without relative improvement of
    /// at least [`StopCriteria::min_rel_improvement`] (0 disables). This
    /// is what keeps infeasible latency probes cheap: a pulse that cannot
    /// reach the target plateaus long before `max_iters`.
    pub patience: usize,
    /// Relative cost improvement that counts as progress for the
    /// stagnation check.
    pub min_rel_improvement: f64,
}

impl Default for StopCriteria {
    fn default() -> Self {
        Self {
            max_iters: 300,
            target_cost: 1e-4,
            grad_tol: 1e-10,
            patience: 30,
            min_rel_improvement: 3e-3,
        }
    }
}

/// Tracks the stagnation rule of [`StopCriteria`].
#[derive(Debug, Clone)]
struct StagnationGuard {
    patience: usize,
    min_rel: f64,
    reference_cost: f64,
    since_improvement: usize,
}

impl StagnationGuard {
    fn new(stop: &StopCriteria, initial_cost: f64) -> Self {
        Self {
            patience: stop.patience,
            min_rel: stop.min_rel_improvement,
            reference_cost: initial_cost,
            since_improvement: 0,
        }
    }

    /// Feeds the cost after an iteration; returns `true` when stalled.
    fn stalled(&mut self, cost: f64) -> bool {
        if self.patience == 0 {
            return false;
        }
        if cost < self.reference_cost * (1.0 - self.min_rel) {
            self.reference_cost = cost;
            self.since_improvement = 0;
            false
        } else {
            self.since_improvement += 1;
            self.since_improvement >= self.patience
        }
    }
}

/// Result of an optimization run.
#[derive(Debug, Clone)]
pub struct OptimResult {
    /// Best parameter vector found.
    pub x: Vec<f64>,
    /// Cost at `x`.
    pub cost: f64,
    /// Iterations performed (accepted steps).
    pub iterations: usize,
    /// Whether `target_cost` was reached.
    pub converged: bool,
    /// Cost recorded after every iteration.
    pub history: Vec<f64>,
}

/// Objective wrapper: returns `(cost, gradient)` at the given point.
pub type Objective<'a> = dyn FnMut(&[f64]) -> (f64, Vec<f64>) + 'a;
/// Optional projection onto the feasible box (amplitude bounds).
pub type Projection<'a> = dyn Fn(&mut [f64]) + 'a;

/// A first-order minimizer.
pub trait Optimizer {
    /// Minimizes `f` starting from `x0`, projecting iterates through
    /// `project` when provided.
    fn minimize(
        &self,
        f: &mut Objective<'_>,
        project: Option<&Projection<'_>>,
        x0: Vec<f64>,
        stop: &StopCriteria,
    ) -> OptimResult;

    /// Short identifier for reports.
    fn name(&self) -> &'static str;
}

/// Which optimizer to run (serializable configuration).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// Adam with the given learning rate.
    Adam {
        /// Step size.
        lr: f64,
    },
    /// L-BFGS with the given memory.
    Lbfgs {
        /// History length (pairs of (s, y) retained).
        memory: usize,
    },
    /// Plain momentum gradient descent.
    Momentum {
        /// Step size.
        lr: f64,
        /// Momentum factor in `[0, 1)`.
        beta: f64,
    },
}

impl Default for OptimizerKind {
    fn default() -> Self {
        // The paper picks BFGS; L-BFGS(10) is its scalable realization.
        OptimizerKind::Lbfgs { memory: 10 }
    }
}

impl OptimizerKind {
    /// Instantiates the optimizer.
    pub fn build(self) -> Box<dyn Optimizer> {
        match self {
            OptimizerKind::Adam { lr } => Box::new(Adam { lr }),
            OptimizerKind::Lbfgs { memory } => Box::new(Lbfgs { memory }),
            OptimizerKind::Momentum { lr, beta } => Box::new(Momentum { lr, beta }),
        }
    }
}

fn inf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
}

/// Adam (Kingma & Ba) with bound projection after each step.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
}

impl Optimizer for Adam {
    fn minimize(
        &self,
        f: &mut Objective<'_>,
        project: Option<&Projection<'_>>,
        mut x: Vec<f64>,
        stop: &StopCriteria,
    ) -> OptimResult {
        let (beta1, beta2, eps) = (0.9, 0.999, 1e-8);
        let n = x.len();
        let mut m = vec![0.0; n];
        let mut v = vec![0.0; n];
        let mut history = Vec::new();
        let (mut cost, mut grad) = f(&x);
        let mut best_x = x.clone();
        let mut best_cost = cost;
        let mut guard = StagnationGuard::new(stop, cost);

        for t in 1..=stop.max_iters {
            if cost <= stop.target_cost || inf_norm(&grad) <= stop.grad_tol {
                return OptimResult {
                    x: best_x,
                    cost: best_cost,
                    iterations: t - 1,
                    converged: best_cost <= stop.target_cost,
                    history,
                };
            }
            for i in 0..n {
                m[i] = beta1 * m[i] + (1.0 - beta1) * grad[i];
                v[i] = beta2 * v[i] + (1.0 - beta2) * grad[i] * grad[i];
                let m_hat = m[i] / (1.0 - beta1.powi(t as i32));
                let v_hat = v[i] / (1.0 - beta2.powi(t as i32));
                x[i] -= self.lr * m_hat / (v_hat.sqrt() + eps);
            }
            if let Some(p) = project {
                p(&mut x);
            }
            let (c, g) = f(&x);
            cost = c;
            grad = g;
            history.push(cost);
            if cost < best_cost {
                best_cost = cost;
                best_x = x.clone();
            }
            if guard.stalled(best_cost) {
                return OptimResult {
                    x: best_x,
                    cost: best_cost,
                    iterations: t,
                    converged: best_cost <= stop.target_cost,
                    history,
                };
            }
        }
        OptimResult {
            x: best_x,
            cost: best_cost,
            iterations: stop.max_iters,
            converged: best_cost <= stop.target_cost,
            history,
        }
    }

    fn name(&self) -> &'static str {
        "adam"
    }
}

/// Momentum gradient descent with bound projection.
#[derive(Debug, Clone)]
pub struct Momentum {
    /// Learning rate.
    pub lr: f64,
    /// Momentum factor.
    pub beta: f64,
}

impl Optimizer for Momentum {
    fn minimize(
        &self,
        f: &mut Objective<'_>,
        project: Option<&Projection<'_>>,
        mut x: Vec<f64>,
        stop: &StopCriteria,
    ) -> OptimResult {
        let n = x.len();
        let mut vel = vec![0.0; n];
        let mut history = Vec::new();
        let (mut cost, mut grad) = f(&x);
        let mut best_x = x.clone();
        let mut best_cost = cost;
        let mut guard = StagnationGuard::new(stop, cost);

        for t in 1..=stop.max_iters {
            if cost <= stop.target_cost || inf_norm(&grad) <= stop.grad_tol {
                return OptimResult {
                    x: best_x,
                    cost: best_cost,
                    iterations: t - 1,
                    converged: best_cost <= stop.target_cost,
                    history,
                };
            }
            for i in 0..n {
                vel[i] = self.beta * vel[i] - self.lr * grad[i];
                x[i] += vel[i];
            }
            if let Some(p) = project {
                p(&mut x);
            }
            let (c, g) = f(&x);
            cost = c;
            grad = g;
            history.push(cost);
            if cost < best_cost {
                best_cost = cost;
                best_x = x.clone();
            }
            if guard.stalled(best_cost) {
                return OptimResult {
                    x: best_x,
                    cost: best_cost,
                    iterations: t,
                    converged: best_cost <= stop.target_cost,
                    history,
                };
            }
        }
        OptimResult {
            x: best_x,
            cost: best_cost,
            iterations: stop.max_iters,
            converged: best_cost <= stop.target_cost,
            history,
        }
    }

    fn name(&self) -> &'static str {
        "momentum"
    }
}

/// L-BFGS with two-loop recursion and a strong-Wolfe line search,
/// projecting onto the bound box at every trial point (projected
/// quasi-Newton). The Wolfe curvature condition guarantees `sᵀy > 0` for
/// accepted interior steps, keeping the inverse-Hessian approximation
/// positive definite; pairs that still fail a relative curvature test
/// (projection-clipped steps) are skipped, and the history is dropped
/// entirely if it goes stale.
#[derive(Debug, Clone)]
pub struct Lbfgs {
    /// Number of curvature pairs retained.
    pub memory: usize,
}

impl Optimizer for Lbfgs {
    fn minimize(
        &self,
        f: &mut Objective<'_>,
        project: Option<&Projection<'_>>,
        mut x: Vec<f64>,
        stop: &StopCriteria,
    ) -> OptimResult {
        let mut s_hist: Vec<Vec<f64>> = Vec::new();
        let mut y_hist: Vec<Vec<f64>> = Vec::new();
        let mut rho_hist: Vec<f64> = Vec::new();
        let mut history = Vec::new();
        let mut stale_pairs = 0usize;
        // Per-iteration buffers hoisted out of the loop: the two-loop
        // recursion runs hundreds of times per solve.
        let mut q: Vec<f64> = Vec::new();
        let mut dir: Vec<f64> = Vec::new();
        let mut alphas: Vec<f64> = Vec::new();

        if let Some(p) = project {
            p(&mut x);
        }
        let (mut cost, mut grad) = f(&x);
        let mut best_x = x.clone();
        let mut best_cost = cost;
        let mut guard = StagnationGuard::new(stop, cost);

        for t in 1..=stop.max_iters {
            if cost <= stop.target_cost || inf_norm(&grad) <= stop.grad_tol {
                return OptimResult {
                    x: best_x,
                    cost: best_cost,
                    iterations: t - 1,
                    converged: best_cost <= stop.target_cost,
                    history,
                };
            }

            // Two-loop recursion for the search direction d = −H·g.
            q.clear();
            q.extend_from_slice(&grad);
            let m = s_hist.len();
            alphas.clear();
            alphas.resize(m, 0.0);
            for i in (0..m).rev() {
                let alpha = rho_hist[i] * dot(&s_hist[i], &q);
                alphas[i] = alpha;
                for (qk, yk) in q.iter_mut().zip(&y_hist[i]) {
                    *qk -= alpha * yk;
                }
            }
            // Initial Hessian scaling γ = sᵀy / yᵀy.
            let gamma = if m > 0 {
                let sy = dot(&s_hist[m - 1], &y_hist[m - 1]);
                let yy = dot(&y_hist[m - 1], &y_hist[m - 1]);
                if yy > 0.0 {
                    sy / yy
                } else {
                    1.0
                }
            } else {
                1.0
            };
            for qk in q.iter_mut() {
                *qk *= gamma;
            }
            for i in 0..m {
                let beta = rho_hist[i] * dot(&y_hist[i], &q);
                for (qk, sk) in q.iter_mut().zip(&s_hist[i]) {
                    *qk += (alphas[i] - beta) * sk;
                }
            }
            dir.clear();
            dir.extend(q.iter().map(|&v| -v));
            // Ensure descent; fall back to steepest descent otherwise.
            if dot(&dir, &grad) >= 0.0 {
                for (d, g) in dir.iter_mut().zip(&grad) {
                    *d = -g;
                }
            }

            let mut attempt = wolfe_line_search(f, project, &x, cost, &grad, &dir);
            if attempt.is_none() && !s_hist.is_empty() {
                // Quasi-Newton direction failed: restart from steepest descent.
                s_hist.clear();
                y_hist.clear();
                rho_hist.clear();
                stale_pairs = 0;
                let sd: Vec<f64> = grad.iter().map(|&g| -g).collect();
                attempt = wolfe_line_search(f, project, &x, cost, &grad, &sd);
            }
            let Some((new_x, new_cost, new_grad)) = attempt else {
                // Stationary (up to the bounds) for our purposes.
                return OptimResult {
                    x: best_x,
                    cost: best_cost,
                    iterations: t,
                    converged: best_cost <= stop.target_cost,
                    history,
                };
            };

            // Update curvature history with a relative-scale test.
            let s: Vec<f64> = new_x.iter().zip(&x).map(|(a, b)| a - b).collect();
            let yv: Vec<f64> = new_grad.iter().zip(&grad).map(|(a, b)| a - b).collect();
            let sy = dot(&s, &yv);
            let scale = dot(&s, &s).sqrt() * dot(&yv, &yv).sqrt();
            if sy > 1e-10 * scale.max(1e-300) {
                s_hist.push(s);
                y_hist.push(yv);
                rho_hist.push(1.0 / sy);
                stale_pairs = 0;
                if s_hist.len() > self.memory {
                    s_hist.remove(0);
                    y_hist.remove(0);
                    rho_hist.remove(0);
                }
            } else {
                stale_pairs += 1;
                if stale_pairs >= 3 {
                    // History no longer reflects local curvature; restart.
                    s_hist.clear();
                    y_hist.clear();
                    rho_hist.clear();
                    stale_pairs = 0;
                }
            }

            x = new_x;
            cost = new_cost;
            grad = new_grad;
            history.push(cost);
            if cost < best_cost {
                best_cost = cost;
                best_x = x.clone();
            }
            if guard.stalled(best_cost) {
                return OptimResult {
                    x: best_x,
                    cost: best_cost,
                    iterations: t,
                    converged: best_cost <= stop.target_cost,
                    history,
                };
            }
        }
        OptimResult {
            x: best_x,
            cost: best_cost,
            iterations: stop.max_iters,
            converged: best_cost <= stop.target_cost,
            history,
        }
    }

    fn name(&self) -> &'static str {
        "lbfgs"
    }
}

/// One evaluated line-search point.
struct LsPoint {
    alpha: f64,
    x: Vec<f64>,
    cost: f64,
    grad: Vec<f64>,
    /// φ'(α) = ∇f(x_α)·d (with the raw direction; exact in the interior).
    dphi: f64,
}

/// Strong-Wolfe line search (Nocedal & Wright, Algorithm 3.5/3.6) with
/// box projection applied to every trial point. Returns
/// `(x⁺, cost⁺, grad⁺)` or `None` when no acceptable step exists.
fn wolfe_line_search(
    f: &mut Objective<'_>,
    project: Option<&Projection<'_>>,
    x: &[f64],
    cost0: f64,
    grad0: &[f64],
    dir: &[f64],
) -> Option<(Vec<f64>, f64, Vec<f64>)> {
    let c1 = 1e-4;
    let c2 = 0.9;
    let dphi0 = dot(grad0, dir);
    if dphi0 >= 0.0 {
        return None;
    }

    let mut eval = |alpha: f64| -> LsPoint {
        let mut trial: Vec<f64> = x
            .iter()
            .zip(dir)
            .map(|(&xi, &di)| xi + alpha * di)
            .collect();
        if let Some(p) = project {
            p(&mut trial);
        }
        let (c, g) = f(&trial);
        let dphi = dot(&g, dir);
        LsPoint {
            alpha,
            x: trial,
            cost: c,
            grad: g,
            dphi,
        }
    };

    let accept = |p: LsPoint| Some((p.x, p.cost, p.grad));

    // Bracketing phase.
    let mut prev = LsPoint {
        alpha: 0.0,
        x: x.to_vec(),
        cost: cost0,
        grad: grad0.to_vec(),
        dphi: dphi0,
    };
    let mut alpha = 1.0;
    let alpha_max = 64.0;
    for i in 0..12 {
        let cur = eval(alpha);
        if cur.cost > cost0 + c1 * cur.alpha * dphi0 || (i > 0 && cur.cost >= prev.cost) {
            return zoom(&mut eval, cost0, dphi0, c1, c2, prev, cur).and_then(accept);
        }
        if cur.dphi.abs() <= -c2 * dphi0 {
            return accept(cur);
        }
        if cur.dphi >= 0.0 {
            return zoom(&mut eval, cost0, dphi0, c1, c2, cur, prev).and_then(accept);
        }
        if alpha >= alpha_max {
            // Sufficient decrease held all the way out; take the long step.
            return accept(cur);
        }
        prev = cur;
        alpha = (alpha * 2.0).min(alpha_max);
    }
    accept(prev).filter(|(_, c, _)| *c < cost0)
}

/// Zoom phase: maintains the Wolfe invariants on `[lo, hi]` and bisects.
fn zoom(
    eval: &mut impl FnMut(f64) -> LsPoint,
    cost0: f64,
    dphi0: f64,
    c1: f64,
    c2: f64,
    mut lo: LsPoint,
    mut hi: LsPoint,
) -> Option<LsPoint> {
    for _ in 0..15 {
        let alpha = 0.5 * (lo.alpha + hi.alpha);
        if (hi.alpha - lo.alpha).abs() < 1e-14 {
            break;
        }
        let cur = eval(alpha);
        if cur.cost > cost0 + c1 * cur.alpha * dphi0 || cur.cost >= lo.cost {
            hi = cur;
        } else {
            if cur.dphi.abs() <= -c2 * dphi0 {
                return Some(cur);
            }
            if cur.dphi * (hi.alpha - lo.alpha) >= 0.0 {
                hi = LsPoint {
                    alpha: lo.alpha,
                    x: lo.x.clone(),
                    cost: lo.cost,
                    grad: lo.grad.clone(),
                    dphi: lo.dphi,
                };
            }
            lo = cur;
        }
    }
    // Fall back to the best sufficient-decrease point seen.
    if lo.alpha > 0.0 && lo.cost < cost0 {
        Some(lo)
    } else {
        None
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Convex quadratic: f(x) = Σ cᵢ(xᵢ − aᵢ)².
    fn quadratic(c: Vec<f64>, a: Vec<f64>) -> impl FnMut(&[f64]) -> (f64, Vec<f64>) {
        move |x: &[f64]| {
            let cost: f64 = x
                .iter()
                .zip(&c)
                .zip(&a)
                .map(|((&xi, &ci), &ai)| ci * (xi - ai) * (xi - ai))
                .sum();
            let grad = x
                .iter()
                .zip(&c)
                .zip(&a)
                .map(|((&xi, &ci), &ai)| 2.0 * ci * (xi - ai))
                .collect();
            (cost, grad)
        }
    }

    /// Rosenbrock in 2D — a classic non-convex line-search stress test.
    fn rosenbrock(x: &[f64]) -> (f64, Vec<f64>) {
        let (a, b) = (1.0, 100.0);
        let cost = (a - x[0]).powi(2) + b * (x[1] - x[0] * x[0]).powi(2);
        let g0 = -2.0 * (a - x[0]) - 4.0 * b * x[0] * (x[1] - x[0] * x[0]);
        let g1 = 2.0 * b * (x[1] - x[0] * x[0]);
        (cost, vec![g0, g1])
    }

    #[test]
    fn all_optimizers_solve_quadratic() {
        let stop = StopCriteria {
            max_iters: 2000,
            target_cost: 1e-10,
            grad_tol: 1e-12,
            patience: 0,
            min_rel_improvement: 0.0,
        };
        for kind in [
            OptimizerKind::Adam { lr: 0.1 },
            OptimizerKind::Lbfgs { memory: 10 },
            OptimizerKind::Momentum {
                lr: 0.05,
                beta: 0.9,
            },
        ] {
            let mut f = quadratic(vec![1.0, 4.0, 0.5], vec![1.0, -2.0, 3.0]);
            let opt = kind.build();
            let r = opt.minimize(&mut f, None, vec![0.0; 3], &stop);
            assert!(r.converged, "{} failed: cost {}", opt.name(), r.cost);
            assert!((r.x[0] - 1.0).abs() < 1e-3, "{}", opt.name());
            assert!((r.x[1] + 2.0).abs() < 1e-3, "{}", opt.name());
            assert!((r.x[2] - 3.0).abs() < 1e-3, "{}", opt.name());
        }
    }

    #[test]
    fn lbfgs_beats_adam_on_rosenbrock() {
        let stop = StopCriteria {
            max_iters: 500,
            target_cost: 1e-8,
            grad_tol: 1e-12,
            patience: 0,
            min_rel_improvement: 0.0,
        };
        let lbfgs = Lbfgs { memory: 10 };
        let r1 = lbfgs.minimize(&mut rosenbrock, None, vec![-1.2, 1.0], &stop);
        assert!(r1.converged, "lbfgs cost {}", r1.cost);
        let adam = Adam { lr: 0.01 };
        let r2 = adam.minimize(&mut rosenbrock, None, vec![-1.2, 1.0], &stop);
        // Adam typically needs far more iterations here.
        assert!(r1.iterations < stop.max_iters);
        assert!(r1.cost <= r2.cost + 1e-8);
    }

    #[test]
    fn projection_keeps_iterates_in_box() {
        let stop = StopCriteria {
            max_iters: 200,
            target_cost: 1e-12,
            grad_tol: 1e-14,
            ..StopCriteria::default()
        };
        // Unconstrained minimum at 5, box at [−1, 1] → solution clamps to 1.
        let project = |x: &mut [f64]| {
            for v in x.iter_mut() {
                *v = v.clamp(-1.0, 1.0);
            }
        };
        for kind in [
            OptimizerKind::Lbfgs { memory: 5 },
            OptimizerKind::Adam { lr: 0.2 },
        ] {
            let mut f = quadratic(vec![1.0], vec![5.0]);
            let r = kind
                .build()
                .minimize(&mut f, Some(&project), vec![0.0], &stop);
            assert!((r.x[0] - 1.0).abs() < 1e-6, "{kind:?} got {}", r.x[0]);
        }
    }

    #[test]
    fn immediate_convergence_reports_zero_iterations() {
        let stop = StopCriteria {
            max_iters: 100,
            target_cost: 1.0,
            grad_tol: 1e-12,
            ..StopCriteria::default()
        };
        let mut f = quadratic(vec![1.0], vec![0.0]);
        let r = Lbfgs { memory: 5 }.minimize(&mut f, None, vec![0.1], &stop);
        assert_eq!(r.iterations, 0);
        assert!(r.converged);
    }

    #[test]
    fn history_is_monotone_for_lbfgs_best_tracking() {
        let stop = StopCriteria {
            max_iters: 50,
            target_cost: 0.0,
            grad_tol: 1e-14,
            ..StopCriteria::default()
        };
        let r = Lbfgs { memory: 10 }.minimize(&mut rosenbrock, None, vec![-1.2, 1.0], &stop);
        // Line search guarantees non-increasing cost.
        for w in r.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
    }

    #[test]
    fn default_kind_is_lbfgs() {
        assert_eq!(
            OptimizerKind::default(),
            OptimizerKind::Lbfgs { memory: 10 }
        );
        assert_eq!(OptimizerKind::default().build().name(), "lbfgs");
    }
}
