//! The GRAPE solver: pulse optimization toward a target unitary.
//!
//! Cost is the phase-invariant gate infidelity
//! `1 − |Tr(U_target†·X_N)|²/d²`; the paper sets the convergence target to
//! `1e-4` (§IV-D). Gradients come in two flavors:
//!
//! - [`GradientMethod::FirstOrder`] — the standard GRAPE approximation
//!   `∂U_k/∂u ≈ −iΔt·H_j·U_k`, accurate to `O(Δt²)` and used by every
//!   practical implementation;
//! - [`GradientMethod::Exact`] — Fréchet-derivative gradients through the
//!   augmented-block matrix exponential, used for verification and for
//!   coarse time grids.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use accqoc_hw::ControlModel;
use accqoc_linalg::{eigh_into, expm_frechet, expm_i, Mat, C64, ZERO};

use crate::optimizer::{OptimizerKind, StopCriteria};
use crate::propagate::{backward_states_into, forward_states_into};
use crate::pulse::Pulse;
use crate::workspace::Workspace;

/// How to compute GRAPE gradients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GradientMethod {
    /// Exact gradients through the spectral (Daleckii–Krein) form of the
    /// propagator derivative: one Hermitian eigendecomposition per slice.
    /// Exact for any `Δt`, and the default — coarse 1 ns slices would
    /// otherwise starve the quasi-Newton line search of descent.
    #[default]
    Spectral,
    /// First-order commutator-free approximation
    /// `∂U_k/∂u ≈ −iΔt·H_j·U_k` — the textbook GRAPE gradient, accurate
    /// only for `‖H‖Δt ≪ 1`.
    FirstOrder,
    /// Exact Fréchet derivatives through the augmented-block matrix
    /// exponential (slowest; retained for cross-verification).
    Exact,
}

/// Initial pulse guess.
#[derive(Debug, Clone, PartialEq)]
pub enum InitStrategy {
    /// All-zero controls.
    Zero,
    /// Deterministic uniform noise in `±scale·max_amp`, seeded.
    Random {
        /// Fraction of the amplitude bound.
        scale: f64,
        /// RNG seed — identical seeds give identical runs.
        seed: u64,
    },
    /// Warm start from an existing pulse (resampled to the step count) —
    /// the mechanism behind the paper's MST-ordered compilation (§V).
    Warm(Pulse),
}

impl Default for InitStrategy {
    fn default() -> Self {
        // Small random break of symmetry; deterministic by default.
        InitStrategy::Random {
            scale: 0.1,
            seed: 0xACC0,
        }
    }
}

/// GRAPE configuration.
#[derive(Debug, Clone, Default)]
pub struct GrapeOptions {
    /// Optimizer selection (paper: BFGS → our L-BFGS default).
    pub optimizer: OptimizerKind,
    /// Stopping criteria; `target_cost` is the fidelity target.
    pub stop: StopCriteria,
    /// Gradient computation method.
    pub gradient: GradientMethod,
    /// Initial guess.
    pub init: InitStrategy,
    /// Weight of the pulse-smoothness penalty `λ·Σ(Δu)²` added to the
    /// cost (0 disables). Small values (≈1e-3) trade a few extra slices
    /// for hardware-friendlier envelopes — the "simpler shape" property
    /// the paper attributes to QOC pulses (§II-E).
    pub smoothness_weight: f64,
}

impl GrapeOptions {
    /// Returns a copy with a different initial guess.
    pub fn with_init(mut self, init: InitStrategy) -> Self {
        self.init = init;
        self
    }

    /// Returns a copy with the given smoothness penalty weight.
    pub fn with_smoothness(mut self, weight: f64) -> Self {
        self.smoothness_weight = weight;
        self
    }

    /// Returns a copy with a different iteration cap.
    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        self.stop.max_iters = max_iters;
        self
    }
}

/// A pulse-synthesis problem: realize `target` on `model` in `n_steps`
/// slices.
///
/// The target is borrowed, not owned: the latency binary search probes
/// the same target a dozen-plus times per compile, and the serving tier
/// runs thousands of such searches — cloning a `2^q × 2^q` matrix per
/// probe was pure allocator traffic.
#[derive(Debug, Clone)]
pub struct GrapeProblem<'a> {
    /// Device model (drift, controls, dt).
    pub model: &'a ControlModel,
    /// Target unitary (must match the model dimension).
    pub target: &'a Mat,
    /// Number of time slices; latency = `n_steps · dt`.
    pub n_steps: usize,
    /// Solver configuration.
    pub options: GrapeOptions,
}

/// Result of one GRAPE run.
#[derive(Debug, Clone)]
pub struct GrapeOutcome {
    /// The optimized pulse.
    pub pulse: Pulse,
    /// Final infidelity `1 − |Tr(U_T†X_N)|²/d²`.
    pub infidelity: f64,
    /// Optimizer iterations (the paper's compile-cost metric, §VI-G).
    pub iterations: usize,
    /// Objective evaluations, including line-search probes.
    pub fn_evals: usize,
    /// Whether the fidelity target was met.
    pub converged: bool,
    /// Cost after each iteration.
    pub history: Vec<f64>,
}

/// Phase-invariant infidelity between the realized and target unitaries.
pub fn infidelity(target: &Mat, realized: &Mat) -> f64 {
    let d = target.rows() as f64;
    let phi = target.hs_inner(realized) / C64::real(d);
    (1.0 - phi.norm_sqr()).max(0.0)
}

/// Runs GRAPE on a problem with a throwaway [`Workspace`].
///
/// Repeated solves (latency searches, pre-compilation loops) should hold
/// one workspace per thread and call [`solve_with`] instead; the results
/// are identical, only the allocations differ.
///
/// # Panics
///
/// Panics if the target dimension disagrees with the model.
pub fn solve(problem: &GrapeProblem<'_>) -> GrapeOutcome {
    solve_with(problem, &mut Workspace::new())
}

/// Runs GRAPE on a problem, reusing the caller's scratch buffers.
///
/// # Panics
///
/// Panics if the target dimension disagrees with the model.
pub fn solve_with(problem: &GrapeProblem<'_>, ws: &mut Workspace) -> GrapeOutcome {
    let model = problem.model;
    let dim = model.dim();
    assert_eq!(problem.target.rows(), dim, "target dimension vs model");
    assert!(problem.target.is_square());
    let n_ctrl = model.n_controls();
    let n_steps = problem.n_steps;
    let dt = model.dt_ns();

    // Degenerate case: zero-length pulse realizes the identity.
    if n_steps == 0 {
        let empty = Pulse::zeros(n_ctrl, 0, dt);
        let inf = infidelity(problem.target, &Mat::identity(dim));
        return GrapeOutcome {
            pulse: empty,
            infidelity: inf,
            iterations: 0,
            fn_evals: 1,
            converged: inf <= problem.options.stop.target_cost,
            history: vec![],
        };
    }

    let x0 = initial_params(problem, n_ctrl, n_steps, dt);

    let mut evals = 0usize;
    let smoothness = problem.options.smoothness_weight;
    let mut objective = |params: &[f64]| -> (f64, Vec<f64>) {
        evals += 1;
        // One gradient vector per evaluation: the optimizer's line-search
        // state owns its gradients, so this allocation is part of its
        // API. Everything below it reuses workspace buffers.
        let mut grad = Vec::with_capacity(n_ctrl * n_steps);
        let mut cost = cost_and_gradient_into(
            model,
            problem.target,
            params,
            n_steps,
            problem.options.gradient,
            ws,
            &mut grad,
        );
        if smoothness > 0.0 {
            let (pc, pg) = crate::analysis::smoothness_penalty(params, n_ctrl, n_steps, smoothness);
            cost += pc;
            for (g, p) in grad.iter_mut().zip(&pg) {
                *g += p;
            }
        }
        (cost, grad)
    };

    let bounds: Vec<f64> = model.channels().iter().map(|c| c.max_amp).collect();
    let project = move |params: &mut [f64]| {
        for (i, p) in params.iter_mut().enumerate() {
            let b = bounds[i / n_steps];
            *p = p.clamp(-b, b);
        }
    };

    let optimizer = problem.options.optimizer.build();
    let result = optimizer.minimize(&mut objective, Some(&project), x0, &problem.options.stop);

    let pulse = Pulse::from_params(&result.x, n_ctrl, n_steps, dt);
    // With a penalty active, the optimizer's cost is regularized; report
    // the raw gate infidelity (and judge convergence on it).
    let (raw_infidelity, converged) = if smoothness > 0.0 {
        let realized = crate::propagate::total_unitary(model, &pulse);
        let inf = infidelity(problem.target, &realized);
        (inf, inf <= problem.options.stop.target_cost)
    } else {
        (result.cost, result.converged)
    };
    GrapeOutcome {
        pulse,
        infidelity: raw_infidelity,
        iterations: result.iterations,
        fn_evals: evals,
        converged,
        history: result.history,
    }
}

fn initial_params(problem: &GrapeProblem<'_>, n_ctrl: usize, n_steps: usize, dt: f64) -> Vec<f64> {
    match &problem.options.init {
        InitStrategy::Zero => vec![0.0; n_ctrl * n_steps],
        InitStrategy::Random { scale, seed } => {
            let mut rng = StdRng::seed_from_u64(*seed);
            let bounds: Vec<f64> = problem.model.channels().iter().map(|c| c.max_amp).collect();
            (0..n_ctrl * n_steps)
                .map(|i| rng.gen_range(-1.0..1.0) * scale * bounds[i / n_steps])
                .collect()
        }
        InitStrategy::Warm(pulse) => {
            assert_eq!(
                pulse.n_controls(),
                n_ctrl,
                "warm-start pulse channel count vs model"
            );
            let resampled = pulse.resampled(n_steps);
            Pulse::from_params(&resampled.to_params(), n_ctrl, n_steps, dt).to_params()
        }
    }
}

/// Computes `(cost, gradient)` for the flat parameter vector with a
/// throwaway workspace (test/verification entry point; the solver calls
/// [`cost_and_gradient_into`] with a long-lived workspace).
#[cfg(test)]
fn cost_and_gradient(
    model: &ControlModel,
    target: &Mat,
    params: &[f64],
    n_steps: usize,
    method: GradientMethod,
) -> (f64, Vec<f64>) {
    let mut grad = Vec::new();
    let cost = cost_and_gradient_into(
        model,
        target,
        params,
        n_steps,
        method,
        &mut Workspace::new(),
        &mut grad,
    );
    (cost, grad)
}

/// Computes the GRAPE cost for the flat parameter vector, writing the
/// gradient into `grad` and reusing the workspace buffers.
///
/// This is the innermost function of the entire serving stack — every
/// optimizer iteration and every line-search probe lands here — and on
/// the default spectral path it performs **zero heap allocations** once
/// `ws` and `grad` have warmed to the problem size (asserted by a
/// counting-allocator test). The dense products dispatch to the
/// register-blocked kernel layer of `accqoc-linalg`; the `grape_kernels`
/// bench harness tracks its per-call cost in `BENCH_grape.json`.
///
/// `grad` is cleared and resized to `n_controls × n_steps` (channel-major
/// like [`Pulse::to_params`]). Returns the phase-invariant infidelity
/// `1 − |Tr(U_T†·X_N)|²/d²`.
///
/// # Panics
///
/// Panics if `target` disagrees with the model dimension or `params` is
/// shorter than `n_controls × n_steps`.
#[allow(clippy::too_many_arguments)]
pub fn cost_and_gradient_into(
    model: &ControlModel,
    target: &Mat,
    params: &[f64],
    n_steps: usize,
    method: GradientMethod,
    ws: &mut Workspace,
    grad: &mut Vec<f64>,
) -> f64 {
    let dim = model.dim();
    let d = dim as f64;
    let n_ctrl = model.n_controls();
    let dt = model.dt_ns();
    ws.ensure(dim, n_ctrl, n_steps);

    // Step propagators. For the spectral method the eigendecompositions
    // double as the propagators; the other methods exponentiate directly.
    for k in 0..n_steps {
        ws.load_amps(params, n_steps, k);
        model.hamiltonian_into(&ws.amps, &mut ws.h);
        if method == GradientMethod::Spectral {
            eigh_into(&ws.h, &mut ws.eigs[k], &mut ws.eig_ws)
                .expect("control hamiltonians are hermitian");
            spectral_propagator_into(&ws.eigs[k], dt, &mut ws.tmp, &mut ws.step_us[k]);
        } else {
            ws.step_us[k] = expm_i(&ws.h, dt).expect("hermitian hamiltonian exponentiates");
        }
    }
    forward_states_into(ws, dim, n_steps);
    backward_states_into(ws, target, n_steps);

    // φ = Tr(U_T† X_N)/d; cost = 1 − |φ|².
    let phi = ws.bwd[n_steps].matmul_trace(&ws.fwd[n_steps]) / C64::real(d);
    let cost = (1.0 - phi.norm_sqr()).max(0.0);

    grad.clear();
    grad.resize(n_ctrl * n_steps, 0.0);
    match method {
        GradientMethod::Spectral => {
            for k in 0..n_steps {
                let eig = &ws.eigs[k];
                // M = X_{k−1} · B_k once per step; then, with
                // dU = V·(W ∘ Ĥ_j)·V† and Ĥ_j = V†·H_j·V,
                // ∂φ/∂u = Tr(dU·M)/d = Σ_{a,b} W[a,b]·Ĥ_j[a,b]·M̃[b,a]/d
                // where M̃ = V†·M·V — no per-channel products needed.
                // Both rotations go through the fused kernel; V_k depends
                // on this slice's parameters, so Ĥ_j cannot be hoisted
                // out of the evaluation — only its storage is (ws-owned).
                ws.fwd[k].matmul_into(&ws.bwd[k + 1], &mut ws.m);
                eig.vectors.rotate_into(&ws.m, &mut ws.tmp, &mut ws.mt);
                krein_weights_into(&eig.values, dt, &mut ws.w);
                for (j, ch) in model.channels().iter().enumerate() {
                    eig.vectors
                        .rotate_into(&ch.hamiltonian, &mut ws.tmp, &mut ws.hj_tilde);
                    let mut dphi = ZERO;
                    for a in 0..dim {
                        for b in 0..dim {
                            dphi += ws.w[(a, b)] * ws.hj_tilde[(a, b)] * ws.mt[(b, a)];
                        }
                    }
                    let dphi = dphi / C64::real(d);
                    grad[j * n_steps + k] = -2.0 * (phi.conj() * dphi).re;
                }
            }
        }
        GradientMethod::FirstOrder => {
            // ∂φ/∂u_{j,k} ≈ (−iΔt/d)·Tr(B_k·H_j·X_k).
            for k in 0..n_steps {
                // M = X_k · B_k so Tr(B_k H_j X_k) = Σ_{a,b} H_j[a,b]·M[b,a].
                ws.fwd[k + 1].matmul_into(&ws.bwd[k + 1], &mut ws.m);
                for (j, ch) in model.channels().iter().enumerate() {
                    let tr = ch.hamiltonian.matmul_trace(&ws.m);
                    let dphi = C64::imag(-dt / d) * tr;
                    // d(1−|φ|²)/du = −2·Re(φ̄·∂φ/∂u).
                    grad[j * n_steps + k] = -2.0 * (phi.conj() * dphi).re;
                }
            }
        }
        GradientMethod::Exact => {
            for k in 0..n_steps {
                ws.load_amps(params, n_steps, k);
                model.hamiltonian_into(&ws.amps, &mut ws.h);
                let a = ws.h.scale(C64::imag(-dt));
                for (j, ch) in model.channels().iter().enumerate() {
                    let e = ch.hamiltonian.scale(C64::imag(-dt));
                    let (_, l) = expm_frechet(&a, &e).expect("finite hamiltonians");
                    // ∂φ/∂u = Tr(B_k · L · X_{k−1})/d. One workspace
                    // product plus a fused trace — the historical
                    // `.matmul(..).matmul(..).trace()` chain allocated
                    // two fresh matrices per control per slice.
                    ws.bwd[k + 1].matmul_into(&l, &mut ws.m);
                    let tr = ws.m.matmul_trace(&ws.fwd[k]);
                    let dphi = tr / C64::real(d);
                    grad[j * n_steps + k] = -2.0 * (phi.conj() * dphi).re;
                }
            }
        }
    }
    cost
}

/// Propagator `V·diag(e^{−iλΔt})·V†` from an eigendecomposition.
pub(crate) fn spectral_propagator(eig: &accqoc_linalg::EigH, dt: f64) -> Mat {
    let mut scratch = Mat::zeros(0, 0);
    let mut out = Mat::zeros(0, 0);
    spectral_propagator_into(eig, dt, &mut scratch, &mut out);
    out
}

/// [`spectral_propagator`] written into `out` via a caller-owned phase
/// scratch (no allocation once the buffers are warm).
pub(crate) fn spectral_propagator_into(
    eig: &accqoc_linalg::EigH,
    dt: f64,
    scratch: &mut Mat,
    out: &mut Mat,
) {
    let dim = eig.values.len();
    scratch.copy_from(&eig.vectors);
    for j in 0..dim {
        let phase = C64::cis(-dt * eig.values[j]);
        for i in 0..dim {
            scratch[(i, j)] *= phase;
        }
    }
    scratch.matmul_dagger_into(&eig.vectors, out);
}

/// Daleckii–Krein divided-difference weights for the derivative of
/// `exp(−iΔt·H)` in the eigenbasis of `H`:
/// `W[a,b] = (e^{−iΔtλ_a} − e^{−iΔtλ_b})/(λ_a − λ_b)`, with the confluent
/// limit `−iΔt·e^{−iΔtλ_a}` on (near-)degenerate pairs.
pub(crate) fn krein_weights(values: &[f64], dt: f64) -> Mat {
    let mut out = Mat::zeros(0, 0);
    krein_weights_into(values, dt, &mut out);
    out
}

/// [`krein_weights`] written into `out`, reusing its storage.
pub(crate) fn krein_weights_into(values: &[f64], dt: f64, out: &mut Mat) {
    let dim = values.len();
    out.reshape_zeros(dim, dim);
    for a in 0..dim {
        for b in 0..dim {
            let (la, lb) = (values[a], values[b]);
            out[(a, b)] = if (la - lb).abs() < 1e-9 {
                C64::imag(-dt) * C64::cis(-dt * la)
            } else {
                (C64::cis(-dt * la) - C64::cis(-dt * lb)) / C64::real(la - lb)
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagate::total_unitary;
    use accqoc_circuit::{circuit_unitary, Circuit, Gate};

    fn x_target() -> Mat {
        Mat::from_reals(&[0.0, 1.0, 1.0, 0.0])
    }

    #[test]
    fn gradient_matches_finite_difference_first_order_regime() {
        // On a fine grid the first-order gradient is accurate.
        let model = ControlModel::spin_chain(1).with_dt(0.1);
        let target = x_target();
        let n_steps = 12;
        let params: Vec<f64> = (0..2 * n_steps)
            .map(|i| ((i * 37 % 19) as f64 / 19.0 - 0.5) * 0.8)
            .collect();
        let (c0, g) = cost_and_gradient(
            &model,
            &target,
            &params,
            n_steps,
            GradientMethod::FirstOrder,
        );
        let h = 1e-6;
        for i in [0, 5, n_steps, 2 * n_steps - 1] {
            let mut p = params.clone();
            p[i] += h;
            let (c1, _) =
                cost_and_gradient(&model, &target, &p, n_steps, GradientMethod::FirstOrder);
            let fd = (c1 - c0) / h;
            assert!(
                (fd - g[i]).abs() < 1e-3 * (1.0 + fd.abs()),
                "param {i}: fd {fd} vs analytic {}",
                g[i]
            );
        }
    }

    #[test]
    fn spectral_gradient_matches_finite_difference_on_coarse_grid() {
        // Spectral gradients are exact for any dt, including coarse slices.
        let model = ControlModel::spin_chain(2).with_dt(1.5);
        let target = circuit_unitary(&Circuit::from_gates(2, [Gate::Cx(0, 1)]));
        let n_steps = 5;
        let n_params = model.n_controls() * n_steps;
        let params: Vec<f64> = (0..n_params)
            .map(|i| ((i * 29 % 17) as f64 / 17.0 - 0.5) * 0.9)
            .collect();
        let (c0, g) =
            cost_and_gradient(&model, &target, &params, n_steps, GradientMethod::Spectral);
        let h = 1e-6;
        for i in (0..n_params).step_by(3) {
            let mut p = params.clone();
            p[i] += h;
            let (c1, _) = cost_and_gradient(&model, &target, &p, n_steps, GradientMethod::Spectral);
            let fd = (c1 - c0) / h;
            assert!(
                (fd - g[i]).abs() < 1e-5 * (1.0 + fd.abs()),
                "param {i}: fd {fd} vs spectral {}",
                g[i]
            );
        }
    }

    #[test]
    fn spectral_and_frechet_gradients_agree() {
        let model = ControlModel::spin_chain(1).with_dt(2.0);
        let target = x_target();
        let n_steps = 4;
        let params: Vec<f64> = (0..8).map(|i| (i as f64 / 8.0 - 0.4) * 0.9).collect();
        let (c1, g1) =
            cost_and_gradient(&model, &target, &params, n_steps, GradientMethod::Spectral);
        let (c2, g2) = cost_and_gradient(&model, &target, &params, n_steps, GradientMethod::Exact);
        assert!((c1 - c2).abs() < 1e-10);
        for (a, b) in g1.iter().zip(&g2) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn exact_gradient_matches_finite_difference_on_coarse_grid() {
        let model = ControlModel::spin_chain(1).with_dt(2.0); // coarse slices
        let target = x_target();
        let n_steps = 4;
        let params: Vec<f64> = (0..8).map(|i| (i as f64 / 8.0 - 0.4) * 0.9).collect();
        let (c0, g) = cost_and_gradient(&model, &target, &params, n_steps, GradientMethod::Exact);
        let h = 1e-7;
        for i in 0..8 {
            let mut p = params.clone();
            p[i] += h;
            let (c1, _) = cost_and_gradient(&model, &target, &p, n_steps, GradientMethod::Exact);
            let fd = (c1 - c0) / h;
            assert!(
                (fd - g[i]).abs() < 1e-4 * (1.0 + fd.abs()),
                "param {i}: fd {fd} vs exact {}",
                g[i]
            );
        }
    }

    #[test]
    fn solves_x_gate_single_qubit() {
        let model = ControlModel::spin_chain(1);
        let target = x_target();
        let problem = GrapeProblem {
            model: &model,
            target: &target,
            n_steps: 12,
            options: GrapeOptions::default(),
        };
        let out = solve(&problem);
        assert!(out.converged, "infidelity {}", out.infidelity);
        assert!(out.infidelity <= 1e-4);
        // Realized unitary matches the pulse the solver reports.
        let u = total_unitary(&model, &out.pulse);
        assert!(infidelity(problem.target, &u) <= 1.1e-4);
        assert!(out.pulse.max_abs_amp() <= 1.0 + 1e-12, "bounds respected");
    }

    #[test]
    fn solves_hadamard() {
        let model = ControlModel::spin_chain(1);
        let target = circuit_unitary(&Circuit::from_gates(1, [Gate::H(0)]));
        let problem = GrapeProblem {
            model: &model,
            target: &target,
            n_steps: 12,
            options: GrapeOptions::default(),
        };
        let out = solve(&problem);
        assert!(out.converged, "infidelity {}", out.infidelity);
    }

    #[test]
    fn solves_cnot_two_qubits() {
        let model = ControlModel::spin_chain(2);
        let target = circuit_unitary(&Circuit::from_gates(2, [Gate::Cx(0, 1)]));
        let problem = GrapeProblem {
            model: &model,
            target: &target,
            n_steps: 40,
            options: GrapeOptions::default().with_max_iters(800),
        };
        let out = solve(&problem);
        assert!(
            out.converged,
            "CNOT infidelity {} after {} iters",
            out.infidelity, out.iterations
        );
    }

    #[test]
    fn identity_with_zero_steps_converges_immediately() {
        let model = ControlModel::spin_chain(2);
        let target = Mat::identity(4);
        let problem = GrapeProblem {
            model: &model,
            target: &target,
            n_steps: 0,
            options: GrapeOptions::default(),
        };
        let out = solve(&problem);
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
        assert_eq!(out.pulse.n_steps(), 0);
    }

    #[test]
    fn too_few_steps_fails_to_converge() {
        // An X gate needs ≥ 10 ns at our amplitude bound; 4 steps of 1 ns
        // cannot reach it.
        let model = ControlModel::spin_chain(1);
        let target = x_target();
        let problem = GrapeProblem {
            model: &model,
            target: &target,
            n_steps: 4,
            options: GrapeOptions::default(),
        };
        let out = solve(&problem);
        assert!(
            !out.converged,
            "should be infeasible, got infidelity {}",
            out.infidelity
        );
        assert!(out.infidelity > 1e-3);
    }

    #[test]
    fn warm_start_from_solution_converges_in_few_iterations() {
        let model = ControlModel::spin_chain(1);
        let target = x_target();
        let base = GrapeProblem {
            model: &model,
            target: &target,
            n_steps: 12,
            options: GrapeOptions::default(),
        };
        let cold = solve(&base);
        assert!(cold.converged);
        // Re-solve warm-started from the solution: near-instant.
        let warm_problem = GrapeProblem {
            options: GrapeOptions::default().with_init(InitStrategy::Warm(cold.pulse.clone())),
            ..base
        };
        let warm = solve(&warm_problem);
        assert!(warm.converged);
        assert!(
            warm.iterations <= cold.iterations / 2,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let model = ControlModel::spin_chain(1);
        let target = x_target();
        let make = || {
            solve(&GrapeProblem {
                model: &model,
                target: &target,
                n_steps: 12,
                options: GrapeOptions::default(),
            })
        };
        let a = make();
        let b = make();
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.pulse, b.pulse);
    }
}
