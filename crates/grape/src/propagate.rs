//! Time-slice propagation for piecewise-constant controls.
//!
//! GRAPE divides the control window into `N` slices; slice `k` evolves
//! under `U_k = exp(−i·Δt·H_k)` with
//! `H_k = H₀ + Σ_j u_{j,k}·H_j` (paper §II-D). This module computes step
//! propagators, cumulative forward states `X_k = U_k⋯U_1`, and backward
//! states `B_k = U_T†·U_N⋯U_{k+1}` — everything the gradient needs.

use accqoc_hw::ControlModel;
use accqoc_linalg::{expm_i, Mat};

use crate::pulse::Pulse;

/// Step propagators `U_1 … U_N` for a pulse on a control model.
///
/// # Panics
///
/// Panics if the pulse channel count disagrees with the model.
pub fn step_unitaries(model: &ControlModel, pulse: &Pulse) -> Vec<Mat> {
    assert_eq!(
        pulse.n_controls(),
        model.n_controls(),
        "pulse channels vs model controls"
    );
    let dt = pulse.dt_ns();
    (0..pulse.n_steps())
        .map(|k| {
            let h = model.hamiltonian(&pulse.step_amps(k));
            expm_i(&h, dt).expect("hermitian hamiltonian exponentiates")
        })
        .collect()
}

/// Cumulative forward states: returns `[X_0 = I, X_1, …, X_N]`
/// (length `N + 1`).
pub fn forward_states(step_us: &[Mat], dim: usize) -> Vec<Mat> {
    let mut out = Vec::with_capacity(step_us.len() + 1);
    out.push(Mat::identity(dim));
    for u in step_us {
        let next = u.matmul(out.last().expect("non-empty"));
        out.push(next);
    }
    out
}

/// Backward states: returns `[B_0, …, B_N]` where
/// `B_k = U_target†·U_N⋯U_{k+1}` and `B_N = U_target†`.
pub fn backward_states(step_us: &[Mat], target: &Mat) -> Vec<Mat> {
    let n = step_us.len();
    let mut out = vec![Mat::identity(target.rows()); n + 1];
    out[n] = target.dagger();
    for k in (0..n).rev() {
        out[k] = out[k + 1].matmul(&step_us[k]);
    }
    out
}

/// Forward states written into `ws.fwd` (`X_0 = I … X_N`), reading the
/// first `n_steps` propagators from `ws.step_us`. Allocation-free once
/// the workspace buffers are warm — the solver's per-iteration path.
pub(crate) fn forward_states_into(ws: &mut crate::Workspace, dim: usize, n_steps: usize) {
    ws.fwd[0].set_identity(dim);
    for k in 0..n_steps {
        let (head, tail) = ws.fwd.split_at_mut(k + 1);
        ws.step_us[k].matmul_into(&head[k], &mut tail[0]);
    }
}

/// Backward states written into `ws.bwd` (`B_N = U_target† … B_0`),
/// reading the first `n_steps` propagators from `ws.step_us`.
pub(crate) fn backward_states_into(ws: &mut crate::Workspace, target: &Mat, n_steps: usize) {
    target.dagger_into(&mut ws.bwd[n_steps]);
    for k in (0..n_steps).rev() {
        let (head, tail) = ws.bwd.split_at_mut(k + 1);
        tail[0].matmul_into(&ws.step_us[k], &mut head[k]);
    }
}

/// Final unitary realized by a pulse (`X_N`).
pub fn total_unitary(model: &ControlModel, pulse: &Pulse) -> Mat {
    let us = step_unitaries(model, pulse);
    let mut x = Mat::identity(model.dim());
    for u in &us {
        x = u.matmul(&x);
    }
    x
}

/// Phase-invariant infidelity between the unitary a pulse actually
/// realizes on `model` and `target`: `1 − |Tr(X_N† · target)| / d`.
///
/// This is the verification oracle's ground truth — a cached pulse is
/// only as good as the unitary its propagation reproduces, and a healthy
/// pulse sits at or below the paper's `1e-4` convergence target.
///
/// # Panics
///
/// Panics if the pulse channel count disagrees with the model or the
/// target dimension disagrees with the model's Hilbert space.
pub fn realized_infidelity(model: &ControlModel, pulse: &Pulse, target: &Mat) -> f64 {
    accqoc_linalg::phase_invariant_infidelity(&total_unitary(model, pulse), target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use accqoc_linalg::phase_invariant_infidelity;

    #[test]
    fn zero_pulse_on_driftless_qubit_is_identity() {
        let model = ControlModel::spin_chain(1);
        let pulse = Pulse::zeros(model.n_controls(), 8, model.dt_ns());
        let u = total_unitary(&model, &pulse);
        assert!(u.approx_eq(&Mat::identity(2), 1e-12));
    }

    #[test]
    fn realized_infidelity_matches_direct_comparison() {
        let model = ControlModel::spin_chain(1);
        let mut pulse = Pulse::zeros(model.n_controls(), 10, 1.0);
        for k in 0..10 {
            pulse.set(0, k, 1.0);
        }
        let x = Mat::from_reals(&[0.0, 1.0, 1.0, 0.0]);
        // A full-drive π rotation realizes X…
        assert!(realized_infidelity(&model, &pulse, &x) < 1e-10);
        // …and is maximally far from Z.
        let z = Mat::from_reals(&[1.0, 0.0, 0.0, -1.0]);
        assert!(realized_infidelity(&model, &pulse, &z) > 0.99);
    }

    #[test]
    fn full_x_drive_for_ten_ns_is_x_gate() {
        // Ω/2π = 0.05 GHz ⇒ a π rotation at full amplitude takes 10 ns.
        let model = ControlModel::spin_chain(1);
        let mut pulse = Pulse::zeros(model.n_controls(), 10, 1.0);
        for k in 0..10 {
            pulse.set(0, k, 1.0); // x channel
        }
        let u = total_unitary(&model, &pulse);
        let x = Mat::from_reals(&[0.0, 1.0, 1.0, 0.0]);
        assert!(phase_invariant_infidelity(&u, &x) < 1e-10);
    }

    #[test]
    fn forward_backward_consistency() {
        // B_k · X_k is constant in k: U_T† · X_N.
        let model = ControlModel::spin_chain(2);
        let mut pulse = Pulse::zeros(model.n_controls(), 6, 1.0);
        for k in 0..6 {
            pulse.set(0, k, 0.3);
            pulse.set(3, k, -0.5);
        }
        let us = step_unitaries(&model, &pulse);
        let target = Mat::identity(4);
        let fwd = forward_states(&us, model.dim());
        let bwd = backward_states(&us, &target);
        let reference = bwd[6].matmul(&fwd[6]);
        for k in 0..=6 {
            let prod = bwd[k].matmul(&fwd[k]);
            assert!(prod.approx_eq(&reference, 1e-10), "k = {k}");
        }
    }

    #[test]
    fn propagators_are_unitary() {
        let model = ControlModel::spin_chain(2);
        let mut pulse = Pulse::zeros(model.n_controls(), 5, 1.0);
        pulse.set(1, 2, 0.9);
        pulse.set(2, 4, -0.7);
        for u in step_unitaries(&model, &pulse) {
            assert!(u.is_unitary(1e-11));
        }
        assert!(total_unitary(&model, &pulse).is_unitary(1e-10));
    }

    #[test]
    fn drift_alone_generates_iswap_like_evolution() {
        // After t = π/(2J), exp(−iHt) under the exchange drift maps
        // |01⟩ → −i|10⟩ (an iSWAP up to phase convention).
        let model = ControlModel::spin_chain(2);
        let j = std::f64::consts::TAU * accqoc_hw::COUPLING_GHZ;
        let t_iswap = std::f64::consts::FRAC_PI_2 / j;
        let n_steps = 125; // 12.5 ns at dt = 0.1
        let model = model.with_dt(t_iswap / n_steps as f64);
        let pulse = Pulse::zeros(model.n_controls(), n_steps, model.dt_ns());
        let u = total_unitary(&model, &pulse);
        // |01⟩ = index 1 → −i·|10⟩ = index 2.
        assert!(u[(2, 1)].im < -0.99, "got {:?}", u[(2, 1)]);
        assert!(u[(1, 2)].im < -0.99);
        assert!((u[(0, 0)].re - 1.0).abs() < 1e-9);
        // Populations |00⟩ and |11⟩ untouched; |01⟩/|10⟩ fully exchanged.
        assert!(u[(1, 1)].abs() < 1e-9);
    }
}
