//! GRAPE solves under every optimizer and gradient method the library
//! offers — the paper's tool exposes the same menu (§IV-D).

use accqoc_circuit::{circuit_unitary, Circuit, Gate};
use accqoc_grape::{
    find_minimal_latency, solve, GradientMethod, GrapeOptions, GrapeProblem, InitStrategy,
    LatencySearch, OptimizerKind, StopCriteria,
};
use accqoc_hw::ControlModel;
use accqoc_linalg::Mat;

fn x_target() -> Mat {
    Mat::from_reals(&[0.0, 1.0, 1.0, 0.0])
}

#[test]
fn adam_solves_x_gate() {
    let model = ControlModel::spin_chain(1);
    let out = solve(&GrapeProblem {
        model: &model,
        target: &x_target(),
        n_steps: 14,
        options: GrapeOptions {
            optimizer: OptimizerKind::Adam { lr: 0.05 },
            stop: StopCriteria {
                max_iters: 3000,
                patience: 0,
                ..Default::default()
            },
            ..Default::default()
        },
    });
    assert!(out.converged, "adam infidelity {}", out.infidelity);
}

#[test]
fn momentum_solves_simple_rotation() {
    let model = ControlModel::spin_chain(1);
    let target = circuit_unitary(&Circuit::from_gates(1, [Gate::Rx(0, 0.9)]));
    let out = solve(&GrapeProblem {
        model: &model,
        target: &target,
        n_steps: 10,
        options: GrapeOptions {
            optimizer: OptimizerKind::Momentum {
                lr: 0.02,
                beta: 0.9,
            },
            stop: StopCriteria {
                max_iters: 5000,
                patience: 0,
                ..Default::default()
            },
            ..Default::default()
        },
    });
    assert!(out.converged, "momentum infidelity {}", out.infidelity);
}

#[test]
fn lbfgs_needs_far_fewer_iterations_than_adam() {
    let model = ControlModel::spin_chain(1);
    let mk = |optimizer| {
        solve(&GrapeProblem {
            model: &model,
            target: &x_target(),
            n_steps: 14,
            options: GrapeOptions {
                optimizer,
                stop: StopCriteria {
                    max_iters: 3000,
                    patience: 0,
                    ..Default::default()
                },
                ..Default::default()
            },
        })
    };
    let lbfgs = mk(OptimizerKind::Lbfgs { memory: 10 });
    let adam = mk(OptimizerKind::Adam { lr: 0.05 });
    assert!(lbfgs.converged && adam.converged);
    assert!(
        lbfgs.iterations * 2 < adam.iterations,
        "lbfgs {} vs adam {}",
        lbfgs.iterations,
        adam.iterations
    );
}

#[test]
fn first_order_gradient_converges_on_fine_grid() {
    // With dt = 0.2 ns the first-order approximation is good enough for
    // full convergence — the classic GRAPE regime.
    let model = ControlModel::spin_chain(1).with_dt(0.2);
    let out = solve(&GrapeProblem {
        model: &model,
        target: &x_target(),
        n_steps: 60,
        options: GrapeOptions {
            gradient: GradientMethod::FirstOrder,
            ..Default::default()
        },
    });
    assert!(out.converged, "first-order infidelity {}", out.infidelity);
}

#[test]
fn gradient_methods_agree_on_final_pulse_quality() {
    let model = ControlModel::spin_chain(1);
    let mk = |gradient| {
        solve(&GrapeProblem {
            model: &model,
            target: &x_target(),
            n_steps: 12,
            options: GrapeOptions {
                gradient,
                ..Default::default()
            },
        })
    };
    let spectral = mk(GradientMethod::Spectral);
    let exact = mk(GradientMethod::Exact);
    assert!(spectral.converged && exact.converged);
    assert!(spectral.infidelity <= 1e-4);
    assert!(exact.infidelity <= 1e-4);
}

#[test]
fn latency_search_consistent_across_optimizers() {
    // The minimal latency is a physical property; both optimizers should
    // find (nearly) the same boundary for the X gate.
    let model = ControlModel::spin_chain(1);
    let search = LatencySearch::default();
    let lbfgs =
        find_minimal_latency(&model, &x_target(), &GrapeOptions::default(), &search).unwrap();
    let adam = find_minimal_latency(
        &model,
        &x_target(),
        &GrapeOptions {
            optimizer: OptimizerKind::Adam { lr: 0.08 },
            stop: StopCriteria {
                max_iters: 2000,
                patience: 60,
                ..Default::default()
            },
            ..Default::default()
        },
        &search,
    )
    .unwrap();
    assert_eq!(lbfgs.n_steps, 10);
    assert!(
        adam.n_steps.abs_diff(lbfgs.n_steps) <= 1,
        "adam found {}",
        adam.n_steps
    );
}

#[test]
fn zero_init_breaks_symmetry_eventually() {
    // Zero controls are a stationary-ish point for some targets; the
    // solver must either converge or report non-convergence gracefully.
    let model = ControlModel::spin_chain(1);
    let out = solve(&GrapeProblem {
        model: &model,
        target: &x_target(),
        n_steps: 12,
        options: GrapeOptions {
            init: InitStrategy::Zero,
            ..Default::default()
        },
    });
    // Either outcome is acceptable; the invariant is a finite, bounded run.
    assert!(out.infidelity.is_finite());
    assert!(out.iterations <= 300);
}

#[test]
fn warm_start_across_different_step_counts() {
    let model = ControlModel::spin_chain(1);
    let base = solve(&GrapeProblem {
        model: &model,
        target: &x_target(),
        n_steps: 16,
        options: GrapeOptions::default(),
    });
    assert!(base.converged);
    // Resampling a 16-step solution to 12 steps still seeds convergence.
    let warm = solve(&GrapeProblem {
        model: &model,
        target: &x_target(),
        n_steps: 12,
        options: GrapeOptions::default().with_init(InitStrategy::Warm(base.pulse)),
    });
    assert!(
        warm.converged,
        "warm resample infidelity {}",
        warm.infidelity
    );
}
