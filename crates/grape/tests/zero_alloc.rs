//! Counting-allocator proof of the workspace-reuse endgame: once the
//! workspace and gradient buffers have warmed to the problem size, the
//! default spectral `cost_and_gradient_into` — the innermost function of
//! every optimizer iteration and every latency-search probe — performs
//! **zero** heap allocations.
//!
//! This lives in its own test binary because it installs a process-wide
//! `#[global_allocator]`, and it holds exactly one test so no sibling
//! test thread can allocate inside the measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use accqoc_grape::{cost_and_gradient_into, GradientMethod, Workspace};
use accqoc_hw::ControlModel;
use accqoc_linalg::{Mat, C64};

/// Counts every allocation and reallocation; frees are not interesting
/// here (a warm path that frees must have allocated first).
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warm_spectral_cost_and_gradient_allocates_nothing() {
    let model = ControlModel::spin_chain(2).with_dt(1.5);
    let dim = model.dim();
    let target = Mat::from_fn(dim, dim, |i, j| {
        C64::new(if (i + j) % dim == 1 { 1.0 } else { 0.0 }, 0.0)
    });
    let n_steps = 5;
    let n_params = model.n_controls() * n_steps;
    let params: Vec<f64> = (0..n_params)
        .map(|i| ((i * 29 % 17) as f64 / 17.0 - 0.5) * 0.9)
        .collect();

    let mut ws = Workspace::new();
    let mut grad = Vec::new();
    // Two warm-up evaluations: the first grows every buffer, the second
    // confirms the sizes reached a fixed point before the measured call.
    let mut warm_cost = 0.0;
    for _ in 0..2 {
        warm_cost = cost_and_gradient_into(
            &model,
            &target,
            &params,
            n_steps,
            GradientMethod::Spectral,
            &mut ws,
            &mut grad,
        );
    }

    let before = ALLOCS.load(Ordering::SeqCst);
    let cost = cost_and_gradient_into(
        &model,
        &target,
        &params,
        n_steps,
        GradientMethod::Spectral,
        &mut ws,
        &mut grad,
    );
    let allocs = ALLOCS.load(Ordering::SeqCst) - before;

    assert_eq!(cost.to_bits(), warm_cost.to_bits(), "reuse moved bits");
    assert_eq!(allocs, 0, "warm spectral evaluation hit the allocator");
}
