//! Pins `cost_and_gradient_into` to the pre-kernel-dispatch bytes.
//!
//! The evaluator below re-implements the spectral and first-order cost
//! paths on top of `accqoc_linalg::kernels::reference` — the preserved
//! naive triple loops that predate the register-blocked kernel layer —
//! and demands exact bit equality of the cost and every gradient entry.
//! Together with the kernel-level property suite in `accqoc-linalg`,
//! this is the proof that kernel dispatch cannot move a single byte of
//! any solver output (and therefore of any golden pulse).

use accqoc_grape::{cost_and_gradient_into, GradientMethod, Workspace};
use accqoc_hw::ControlModel;
use accqoc_linalg::{eigh_into, expm_i, kernels, EigH, EighWorkspace, Mat, C64, ZERO};

/// Deterministic off-grid test amplitudes (channel-major).
fn params_for(model: &ControlModel, n_steps: usize) -> Vec<f64> {
    let n = model.n_controls() * n_steps;
    (0..n)
        .map(|i| ((i * 37 % 19) as f64 / 19.0 - 0.5) * 0.8)
        .collect()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// `V·diag(e^{−iλΔt})·V†` through the naive reference kernels, mirroring
/// `spectral_propagator_into` operation for operation.
fn reference_propagator(eig: &EigH, dt: f64) -> Mat {
    let dim = eig.values.len();
    let mut scratch = eig.vectors.clone();
    for j in 0..dim {
        let phase = C64::cis(-dt * eig.values[j]);
        for i in 0..dim {
            scratch[(i, j)] *= phase;
        }
    }
    let mut out = vec![ZERO; dim * dim];
    kernels::reference::matmul_dagger(
        scratch.as_slice(),
        eig.vectors.as_slice(),
        &mut out,
        dim,
        dim,
        dim,
    );
    Mat::from_fn(dim, dim, |i, j| out[i * dim + j])
}

/// Daleckii–Krein weights, duplicated verbatim from the solver.
fn reference_krein_weights(values: &[f64], dt: f64) -> Mat {
    let dim = values.len();
    Mat::from_fn(dim, dim, |a, b| {
        let (la, lb) = (values[a], values[b]);
        if (la - lb).abs() < 1e-9 {
            C64::imag(-dt) * C64::cis(-dt * la)
        } else {
            (C64::cis(-dt * la) - C64::cis(-dt * lb)) / C64::real(la - lb)
        }
    })
}

fn reference_matmul(a: &Mat, b: &Mat) -> Mat {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = vec![ZERO; m * n];
    kernels::reference::matmul(a.as_slice(), b.as_slice(), &mut out, m, k, n);
    Mat::from_fn(m, n, |i, j| out[i * n + j])
}

/// `V†·M·V` through the naive reference kernels.
fn reference_rotate(v: &Mat, m: &Mat) -> Mat {
    let n = v.rows();
    let mut scratch = vec![ZERO; n * n];
    let mut out = vec![ZERO; n * n];
    kernels::reference::rotate(v.as_slice(), m.as_slice(), &mut scratch, &mut out, n);
    Mat::from_fn(n, n, |i, j| out[i * n + j])
}

/// The spectral cost-and-gradient path rebuilt on the reference kernels.
/// Same operations, same order, same `eigh_into` — only the dense-product
/// kernels differ, which is exactly the claim under test.
fn reference_cost_and_gradient(
    model: &ControlModel,
    target: &Mat,
    params: &[f64],
    n_steps: usize,
    method: GradientMethod,
) -> (f64, Vec<f64>) {
    let dim = model.dim();
    let d = dim as f64;
    let n_ctrl = model.n_controls();
    let dt = model.dt_ns();

    let mut eig_ws = EighWorkspace::new();
    let mut h = Mat::zeros(0, 0);
    let mut amps = vec![0.0; n_ctrl];
    let mut eigs = Vec::with_capacity(n_steps);
    let mut step_us = Vec::with_capacity(n_steps);
    for k in 0..n_steps {
        for (j, a) in amps.iter_mut().enumerate() {
            *a = params[j * n_steps + k];
        }
        model.hamiltonian_into(&amps, &mut h);
        if method == GradientMethod::Spectral {
            let mut eig = EigH {
                values: Vec::new(),
                vectors: Mat::zeros(0, 0),
            };
            eigh_into(&h, &mut eig, &mut eig_ws).expect("hermitian");
            step_us.push(reference_propagator(&eig, dt));
            eigs.push(eig);
        } else {
            // The solver's non-spectral propagators come from the Padé
            // `expm_i`, whose products go through the (unblocked)
            // allocating `Mat::matmul` — shared code on both sides.
            step_us.push(expm_i(&h, dt).expect("hermitian"));
        }
    }

    let mut fwd = vec![Mat::identity(dim)];
    for u in &step_us {
        let next = reference_matmul(u, fwd.last().expect("non-empty"));
        fwd.push(next);
    }
    let mut bwd = vec![Mat::identity(dim); n_steps + 1];
    bwd[n_steps] = target.dagger();
    for k in (0..n_steps).rev() {
        bwd[k] = reference_matmul(&bwd[k + 1], &step_us[k]);
    }

    // The trace kernel is shared (never blocked), so calling it here is
    // calling the same code the solver runs.
    let phi = bwd[n_steps].matmul_trace(&fwd[n_steps]) / C64::real(d);
    let cost = (1.0 - phi.norm_sqr()).max(0.0);

    let mut grad = vec![0.0; n_ctrl * n_steps];
    for k in 0..n_steps {
        match method {
            GradientMethod::Spectral => {
                let eig = &eigs[k];
                let m = reference_matmul(&fwd[k], &bwd[k + 1]);
                let mt = reference_rotate(&eig.vectors, &m);
                let w = reference_krein_weights(&eig.values, dt);
                for (j, ch) in model.channels().iter().enumerate() {
                    let hj_tilde = reference_rotate(&eig.vectors, &ch.hamiltonian);
                    let mut dphi = ZERO;
                    for a in 0..dim {
                        for b in 0..dim {
                            dphi += w[(a, b)] * hj_tilde[(a, b)] * mt[(b, a)];
                        }
                    }
                    let dphi = dphi / C64::real(d);
                    grad[j * n_steps + k] = -2.0 * (phi.conj() * dphi).re;
                }
            }
            GradientMethod::FirstOrder => {
                let m = reference_matmul(&fwd[k + 1], &bwd[k + 1]);
                for (j, ch) in model.channels().iter().enumerate() {
                    let tr = ch.hamiltonian.matmul_trace(&m);
                    let dphi = C64::imag(-dt / d) * tr;
                    grad[j * n_steps + k] = -2.0 * (phi.conj() * dphi).re;
                }
            }
            GradientMethod::Exact => unreachable!("not exercised by this suite"),
        }
    }
    (cost, grad)
}

/// One propagator per slice comes from `eigh_into` in both evaluators,
/// so the spectral reference only differs in which dense kernels run —
/// a perfect isolation of the dispatch layer. FirstOrder shares the
/// propagators but exercises the trace-heavy gradient instead.
fn assert_bit_identical(qubits: usize, n_steps: usize, method: GradientMethod) {
    let model = ControlModel::spin_chain(qubits).with_dt(1.5);
    let dim = model.dim();
    let target = Mat::from_fn(dim, dim, |i, j| {
        // Any fixed matrix works; an off-diagonal phase pattern keeps
        // both real and imaginary accumulation paths busy.
        C64::new(
            if (i + j) % dim == 1 { 1.0 } else { 0.0 },
            if i == j { 0.25 } else { 0.0 },
        )
    });
    let params = params_for(&model, n_steps);

    let mut ws = Workspace::new();
    let mut grad = Vec::new();
    let cost = cost_and_gradient_into(
        &model, &target, &params, n_steps, method, &mut ws, &mut grad,
    );
    // Second evaluation through the warm workspace: buffer reuse must not
    // move bits either.
    let mut grad_warm = Vec::new();
    let cost_warm = cost_and_gradient_into(
        &model,
        &target,
        &params,
        n_steps,
        method,
        &mut ws,
        &mut grad_warm,
    );
    assert_eq!(cost.to_bits(), cost_warm.to_bits(), "warm reuse drifted");
    assert_eq!(bits(&grad), bits(&grad_warm), "warm reuse drifted");

    let (ref_cost, ref_grad) =
        reference_cost_and_gradient(&model, &target, &params, n_steps, method);
    assert_eq!(
        cost.to_bits(),
        ref_cost.to_bits(),
        "{method:?} dim {dim}: cost {cost} vs reference {ref_cost}"
    );
    assert_eq!(
        bits(&grad),
        bits(&ref_grad),
        "{method:?} dim {dim}: gradient bytes drifted"
    );
}

#[test]
fn spectral_cost_and_gradient_bit_identical_to_reference_kernels() {
    // dim 2 and 4 are all-remainder shapes for the 2×4 tile; dim 8 runs
    // the main tiled loops.
    assert_bit_identical(1, 6, GradientMethod::Spectral);
    assert_bit_identical(2, 4, GradientMethod::Spectral);
    assert_bit_identical(3, 3, GradientMethod::Spectral);
}

#[test]
fn first_order_cost_and_gradient_bit_identical_to_reference_kernels() {
    assert_bit_identical(1, 6, GradientMethod::FirstOrder);
    assert_bit_identical(2, 4, GradientMethod::FirstOrder);
    assert_bit_identical(3, 3, GradientMethod::FirstOrder);
}
