//! Quantum circuits: ordered gate lists over a fixed qubit register.

use std::collections::BTreeMap;
use std::fmt;

use crate::gate::{Gate, GateKind};

/// A quantum circuit: a sequence of gates over `n_qubits` qubits.
///
/// # Examples
///
/// ```
/// use accqoc_circuit::{Circuit, Gate};
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::H(0));
/// c.push(Gate::Cx(0, 1));
/// assert_eq!(c.len(), 2);
/// assert_eq!(c.depth(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    n_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit over `n_qubits` qubits.
    pub fn new(n_qubits: usize) -> Self {
        Self {
            n_qubits,
            gates: Vec::new(),
        }
    }

    /// Creates a circuit from a gate list.
    ///
    /// # Panics
    ///
    /// Panics if any gate references a qubit `>= n_qubits` or repeats an
    /// operand (see [`Circuit::push`]).
    pub fn from_gates(n_qubits: usize, gates: impl IntoIterator<Item = Gate>) -> Self {
        let mut c = Self::new(n_qubits);
        for g in gates {
            c.push(g);
        }
        c
    }

    /// Number of qubits in the register.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// `true` when the circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gate list.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Iterates over the gates in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Gate> {
        self.gates.iter()
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate references a qubit `>= n_qubits` or lists the
    /// same qubit twice (e.g. `cx q[1], q[1]`).
    pub fn push(&mut self, gate: Gate) {
        let qs = gate.qubits();
        for (i, &q) in qs.iter().enumerate() {
            assert!(
                q < self.n_qubits,
                "gate {gate:?} references qubit {q} but the circuit has {} qubits",
                self.n_qubits
            );
            assert!(
                !qs[..i].contains(&q),
                "gate {gate:?} lists qubit {q} more than once"
            );
        }
        self.gates.push(gate);
    }

    /// Appends all gates of `other` (registers must match).
    ///
    /// # Panics
    ///
    /// Panics if `other` acts on more qubits than this circuit has.
    pub fn append(&mut self, other: &Circuit) {
        assert!(
            other.n_qubits <= self.n_qubits,
            "cannot append a {}-qubit circuit to a {}-qubit circuit",
            other.n_qubits,
            self.n_qubits
        );
        for &g in &other.gates {
            self.push(g);
        }
    }

    /// Circuit depth: length of the longest qubit-dependency chain, with
    /// every gate counting as one layer.
    pub fn depth(&self) -> usize {
        let mut frontier = vec![0usize; self.n_qubits];
        let mut depth = 0;
        for g in &self.gates {
            let level = g.qubits().iter().map(|&q| frontier[q]).max().unwrap_or(0) + 1;
            for q in g.qubits() {
                frontier[q] = level;
            }
            depth = depth.max(level);
        }
        depth
    }

    /// Gate counts keyed by [`GateKind`]. Kinds that never occur are absent.
    pub fn counts_by_kind(&self) -> BTreeMap<GateKind, usize> {
        let mut map = BTreeMap::new();
        for g in &self.gates {
            *map.entry(g.kind()).or_insert(0) += 1;
        }
        map
    }

    /// Instruction mix: per-kind fraction of the total gate count
    /// (paper Table II). Empty circuit yields an empty map.
    pub fn instruction_mix(&self) -> BTreeMap<GateKind, f64> {
        let total = self.gates.len() as f64;
        if total == 0.0 {
            return BTreeMap::new();
        }
        self.counts_by_kind()
            .into_iter()
            .map(|(k, v)| (k, v as f64 / total))
            .collect()
    }

    /// Number of two-qubit gates.
    pub fn two_qubit_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Replaces `ccx` and (optionally) `swap` gates by their hardware-basis
    /// decompositions; all other gates pass through.
    ///
    /// The paper's "map" policies decompose swaps into three CNOTs, while
    /// the "swap" policies keep them as native operations — hence the
    /// switch.
    pub fn decomposed(&self, decompose_swaps: bool) -> Circuit {
        let mut out = Circuit::new(self.n_qubits);
        for g in &self.gates {
            match g {
                Gate::Ccx(..) => {
                    for d in g.decompose() {
                        out.push(d);
                    }
                }
                Gate::Swap(..) if decompose_swaps => {
                    for d in g.decompose() {
                        out.push(d);
                    }
                }
                _ => out.push(*g),
            }
        }
        out
    }

    /// Rewrites all operand qubits through the mapping `f`, keeping the
    /// register size.
    ///
    /// # Panics
    ///
    /// Panics if `f` maps any operand outside the register.
    pub fn remapped(&self, f: impl Fn(usize) -> usize) -> Circuit {
        let mut out = Circuit::new(self.n_qubits);
        for g in &self.gates {
            out.push(g.remap(&f));
        }
        out
    }

    /// Set of distinct qubits actually touched by gates.
    pub fn used_qubits(&self) -> Vec<usize> {
        let mut used = vec![false; self.n_qubits];
        for g in &self.gates {
            for q in g.qubits() {
                used[q] = true;
            }
        }
        (0..self.n_qubits).filter(|&q| used[q]).collect()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Circuit({} qubits, {} gates, depth {})",
            self.n_qubits,
            self.len(),
            self.depth()
        )
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Gate;
    type IntoIter = std::slice::Iter<'a, Gate>;
    fn into_iter(self) -> Self::IntoIter {
        self.gates.iter()
    }
}

impl Extend<Gate> for Circuit {
    fn extend<T: IntoIterator<Item = Gate>>(&mut self, iter: T) {
        for g in iter {
            self.push(g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bell() -> Circuit {
        Circuit::from_gates(2, [Gate::H(0), Gate::Cx(0, 1)])
    }

    #[test]
    fn push_and_len() {
        let c = bell();
        assert_eq!(c.len(), 2);
        assert_eq!(c.n_qubits(), 2);
        assert!(!c.is_empty());
        assert!(Circuit::new(3).is_empty());
    }

    #[test]
    #[should_panic(expected = "references qubit 5")]
    fn out_of_range_qubit_panics() {
        let mut c = Circuit::new(2);
        c.push(Gate::X(5));
    }

    #[test]
    #[should_panic(expected = "more than once")]
    fn duplicate_operand_panics() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx(1, 1));
    }

    #[test]
    fn depth_respects_parallelism() {
        // Two disjoint single-qubit gates share a layer.
        let c = Circuit::from_gates(2, [Gate::H(0), Gate::H(1)]);
        assert_eq!(c.depth(), 1);
        // A chain serializes.
        let c = Circuit::from_gates(2, [Gate::H(0), Gate::Cx(0, 1), Gate::X(1)]);
        assert_eq!(c.depth(), 3);
        assert_eq!(Circuit::new(4).depth(), 0);
    }

    #[test]
    fn counts_and_mix() {
        let c = Circuit::from_gates(2, [Gate::H(0), Gate::T(0), Gate::T(1), Gate::Cx(0, 1)]);
        let counts = c.counts_by_kind();
        assert_eq!(counts[&GateKind::T], 2);
        assert_eq!(counts[&GateKind::H], 1);
        assert_eq!(counts[&GateKind::Cx], 1);
        let mix = c.instruction_mix();
        assert!((mix[&GateKind::T] - 0.5).abs() < 1e-12);
        assert!(Circuit::new(1).instruction_mix().is_empty());
    }

    #[test]
    fn decomposition_expands_high_level_gates() {
        let c = Circuit::from_gates(3, [Gate::Ccx(0, 1, 2), Gate::Swap(0, 2)]);
        let d_keep = c.decomposed(false);
        assert_eq!(d_keep.len(), 15 + 1);
        let d_all = c.decomposed(true);
        assert_eq!(d_all.len(), 15 + 3);
        assert!(d_all
            .iter()
            .all(|g| !matches!(g, Gate::Ccx(..) | Gate::Swap(..))));
    }

    #[test]
    fn remap_and_used_qubits() {
        let c = bell().remapped(|q| 1 - q);
        assert_eq!(c.gates()[1], Gate::Cx(1, 0));
        let mut sparse = Circuit::new(5);
        sparse.push(Gate::X(3));
        assert_eq!(sparse.used_qubits(), vec![3]);
    }

    #[test]
    fn append_and_extend() {
        let mut c = Circuit::new(3);
        c.append(&bell());
        c.extend([Gate::Z(2)]);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn two_qubit_count_counts_pairs_only() {
        let c = Circuit::from_gates(
            3,
            [
                Gate::H(0),
                Gate::Cx(0, 1),
                Gate::Cz(1, 2),
                Gate::Ccx(0, 1, 2),
            ],
        );
        assert_eq!(c.two_qubit_count(), 2);
    }

    #[test]
    fn display_format() {
        assert_eq!(bell().to_string(), "Circuit(2 qubits, 2 gates, depth 2)");
    }
}
