//! Dependency DAG over circuit gates.
//!
//! Both the grouping pass (paper Algorithms 1–2 iterate a DAG in
//! topological order) and the overall-latency computation (Algorithm 3's
//! dynamic program) operate on this structure.

use crate::circuit::Circuit;
use crate::gate::Gate;

/// A node of the circuit DAG: one gate plus its dependency edges.
#[derive(Debug, Clone)]
pub struct DagNode {
    /// The gate at this node.
    pub gate: Gate,
    /// Indices of nodes this gate depends on (per-qubit last writers).
    pub preds: Vec<usize>,
    /// Indices of nodes depending on this gate.
    pub succs: Vec<usize>,
    /// ASAP layer: `max(pred layers) + 1`, i.e. the "global depth" used by
    /// the layer-dividing algorithm (paper Algorithm 2, line 3).
    pub layer: usize,
}

/// Dependency DAG of a circuit. Node indices coincide with gate positions
/// in the originating circuit, so index order is already topological.
///
/// # Examples
///
/// ```
/// use accqoc_circuit::{Circuit, CircuitDag, Gate};
///
/// let c = Circuit::from_gates(2, [Gate::H(0), Gate::Cx(0, 1), Gate::X(1)]);
/// let dag = CircuitDag::from_circuit(&c);
/// assert_eq!(dag.node(1).preds, vec![0]);
/// assert_eq!(dag.node(2).preds, vec![1]);
/// assert_eq!(dag.node(2).layer, 3);
/// ```
#[derive(Debug, Clone)]
pub struct CircuitDag {
    nodes: Vec<DagNode>,
    n_qubits: usize,
}

impl CircuitDag {
    /// Builds the DAG by tracking, per qubit, the last gate that touched
    /// it.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let mut nodes: Vec<DagNode> = Vec::with_capacity(circuit.len());
        let mut last_on_qubit: Vec<Option<usize>> = vec![None; circuit.n_qubits()];

        for (idx, &gate) in circuit.gates().iter().enumerate() {
            let mut preds: Vec<usize> = Vec::new();
            for q in gate.qubits() {
                if let Some(p) = last_on_qubit[q] {
                    if !preds.contains(&p) {
                        preds.push(p);
                    }
                }
            }
            preds.sort_unstable();
            let layer = preds.iter().map(|&p| nodes[p].layer).max().unwrap_or(0) + 1;
            for &p in &preds {
                nodes[p].succs.push(idx);
            }
            nodes.push(DagNode {
                gate,
                preds,
                succs: Vec::new(),
                layer,
            });
            for q in gate.qubits() {
                last_on_qubit[q] = Some(idx);
            }
        }
        Self {
            nodes,
            n_qubits: circuit.n_qubits(),
        }
    }

    /// Number of nodes (gates).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Register width of the originating circuit.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Borrow a node.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn node(&self, idx: usize) -> &DagNode {
        &self.nodes[idx]
    }

    /// All nodes, index order = topological order.
    pub fn nodes(&self) -> &[DagNode] {
        &self.nodes
    }

    /// Indices in topological order (identical to `0..len()` by
    /// construction; provided for readability at call sites).
    pub fn topological_order(&self) -> impl Iterator<Item = usize> + '_ {
        0..self.nodes.len()
    }

    /// Maximum layer value (circuit depth).
    pub fn depth(&self) -> usize {
        self.nodes.iter().map(|n| n.layer).max().unwrap_or(0)
    }

    /// Groups node indices by ASAP layer, layers in ascending order.
    pub fn layers(&self) -> Vec<Vec<usize>> {
        let depth = self.depth();
        let mut layers = vec![Vec::new(); depth];
        for (i, n) in self.nodes.iter().enumerate() {
            layers[n.layer - 1].push(i);
        }
        layers
    }

    /// Critical-path length where node `i` costs `weight(i)`; this is the
    /// dynamic program of the paper's Algorithm 3 in its general form.
    ///
    /// Returns 0 for an empty DAG.
    pub fn critical_path(&self, weight: impl Fn(usize) -> f64) -> f64 {
        let mut finish = vec![0.0f64; self.nodes.len()];
        let mut best = 0.0f64;
        for i in self.topological_order() {
            let start = self.nodes[i]
                .preds
                .iter()
                .map(|&p| finish[p])
                .fold(0.0, f64::max);
            finish[i] = start + weight(i);
            best = best.max(finish[i]);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Circuit {
        Circuit::from_gates(3, [Gate::H(0), Gate::Cx(0, 1), Gate::Cx(1, 2), Gate::X(2)])
    }

    #[test]
    fn edges_follow_qubit_dependencies() {
        let dag = CircuitDag::from_circuit(&chain());
        assert_eq!(dag.len(), 4);
        assert_eq!(dag.node(0).preds, Vec::<usize>::new());
        assert_eq!(dag.node(1).preds, vec![0]);
        assert_eq!(dag.node(2).preds, vec![1]);
        assert_eq!(dag.node(3).preds, vec![2]);
        assert_eq!(dag.node(0).succs, vec![1]);
    }

    #[test]
    fn parallel_gates_share_layer() {
        let c = Circuit::from_gates(
            4,
            [
                Gate::H(0),
                Gate::H(1),
                Gate::Cx(0, 1),
                Gate::H(2),
                Gate::Cx(2, 3),
            ],
        );
        let dag = CircuitDag::from_circuit(&c);
        assert_eq!(dag.node(0).layer, 1);
        assert_eq!(dag.node(1).layer, 1);
        assert_eq!(dag.node(2).layer, 2);
        assert_eq!(dag.node(3).layer, 1);
        assert_eq!(dag.node(4).layer, 2);
        assert_eq!(dag.depth(), 2);
        let layers = dag.layers();
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0], vec![0, 1, 3]);
        assert_eq!(layers[1], vec![2, 4]);
    }

    #[test]
    fn two_qubit_gate_merges_dependencies() {
        // cx(0,1) depends on both H's; preds deduplicated and sorted.
        let c = Circuit::from_gates(2, [Gate::H(0), Gate::H(1), Gate::Cx(0, 1)]);
        let dag = CircuitDag::from_circuit(&c);
        assert_eq!(dag.node(2).preds, vec![0, 1]);
    }

    #[test]
    fn duplicate_pred_collapsed() {
        // Both operands of the second cx last touched by the first cx.
        let c = Circuit::from_gates(2, [Gate::Cx(0, 1), Gate::Cx(1, 0)]);
        let dag = CircuitDag::from_circuit(&c);
        assert_eq!(dag.node(1).preds, vec![0]);
    }

    #[test]
    fn critical_path_unit_weights_is_depth() {
        let dag = CircuitDag::from_circuit(&chain());
        assert_eq!(dag.critical_path(|_| 1.0) as usize, dag.depth());
    }

    #[test]
    fn critical_path_weighted() {
        // Diamond: 0 → {1, 2} → 3 with asymmetric branch costs.
        let c = Circuit::from_gates(2, [Gate::Cx(0, 1), Gate::H(0), Gate::X(1), Gate::Cx(0, 1)]);
        let dag = CircuitDag::from_circuit(&c);
        let cost = |i: usize| match i {
            1 => 10.0,
            2 => 1.0,
            _ => 2.0,
        };
        // Path 0 → 1 → 3 dominates: 2 + 10 + 2 = 14.
        assert!((dag.critical_path(cost) - 14.0).abs() < 1e-12);
    }

    #[test]
    fn empty_dag() {
        let dag = CircuitDag::from_circuit(&Circuit::new(3));
        assert!(dag.is_empty());
        assert_eq!(dag.depth(), 0);
        assert_eq!(dag.critical_path(|_| 1.0), 0.0);
        assert!(dag.layers().is_empty());
    }
}
