//! Hashable keys identifying unitaries up to global phase and qubit
//! permutation.
//!
//! The paper de-duplicates gate groups "by calculating their corresponding
//! matrices and eliminating duplicated ones. Two groups with permutated
//! Qubits but same operations are also treated as duplicate" (§IV-C).
//! [`UnitaryKey`] implements exactly that equivalence.

use accqoc_linalg::{global_phase_canonical, quantized_bytes, Mat};

/// Quantization resolution for key bytes. Unitaries closer than ~half this
/// distance entry-wise (after phase canonicalization) collide, which is
/// what we want: their pulses are interchangeable at the paper's `1e-4`
/// fidelity target.
pub const KEY_EPS: f64 = 1e-6;

/// A hashable identity for a unitary, canonical up to global phase (and
/// optionally qubit permutation).
///
/// # Examples
///
/// ```
/// use accqoc_circuit::{Circuit, Gate, UnitaryKey, circuit_unitary};
/// use accqoc_linalg::C64;
///
/// let u = circuit_unitary(&Circuit::from_gates(2, [Gate::Cx(0, 1)]));
/// let phased = u.scale(C64::cis(0.7));
/// assert_eq!(UnitaryKey::from_unitary(&u), UnitaryKey::from_unitary(&phased));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UnitaryKey(Vec<u8>);

impl UnitaryKey {
    /// Key identifying the unitary up to global phase only.
    pub fn from_unitary(u: &Mat) -> Self {
        Self(quantized_bytes(&global_phase_canonical(u), KEY_EPS))
    }

    /// Key identifying the unitary up to global phase *and* relabeling of
    /// its `n_qubits` qubits: the lexicographically smallest phase-canonical
    /// key over all qubit permutations.
    ///
    /// Returns the key together with the qubit permutation that achieved
    /// it (`perm[i]` = position the original qubit `i` was sent to).
    ///
    /// # Panics
    ///
    /// Panics if `u` is not `2^n_qubits`-dimensional square.
    pub fn canonical_with_permutation(u: &Mat, n_qubits: usize) -> (Self, Vec<usize>) {
        assert!(u.is_square());
        assert_eq!(u.rows(), 1 << n_qubits, "matrix dim vs qubit count");
        let mut best: Option<(Vec<u8>, Vec<usize>)> = None;
        for perm in permutations(n_qubits) {
            let permuted = permute_qubits(u, &perm, n_qubits);
            let bytes = quantized_bytes(&global_phase_canonical(&permuted), KEY_EPS);
            match &best {
                Some((b, _)) if *b <= bytes => {}
                _ => best = Some((bytes, perm.clone())),
            }
        }
        let (bytes, perm) = best.expect("at least the identity permutation exists");
        (Self(bytes), perm)
    }

    /// Canonical key up to phase and qubit permutation (discarding the
    /// permutation itself).
    pub fn canonical(u: &Mat, n_qubits: usize) -> Self {
        Self::canonical_with_permutation(u, n_qubits).0
    }

    /// Raw key bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Rebuilds a key from bytes produced by [`UnitaryKey::as_bytes`]
    /// (pulse-cache persistence). The bytes are trusted — a corrupted
    /// byte string simply never matches any live key.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Self(bytes)
    }
}

/// Applies a qubit relabeling to a unitary: qubit `i` of the input becomes
/// qubit `perm[i]` of the output (big-endian bit order).
///
/// # Panics
///
/// Panics if `perm` is not a permutation of `0..n_qubits` or the matrix
/// dimension disagrees.
pub fn permute_qubits(u: &Mat, perm: &[usize], n_qubits: usize) -> Mat {
    assert_eq!(perm.len(), n_qubits);
    assert_eq!(u.rows(), 1 << n_qubits);
    let mut basis_perm = vec![0usize; 1 << n_qubits];
    for (b, slot) in basis_perm.iter_mut().enumerate() {
        let mut out = 0usize;
        for (q, &pq) in perm.iter().enumerate() {
            let bit = b >> (n_qubits - 1 - q) & 1;
            out |= bit << (n_qubits - 1 - pq);
        }
        *slot = out;
    }
    u.permute_basis(&basis_perm)
}

/// Inverts a qubit relabeling: if `perm[i] = j` sends qubit `i` to
/// position `j`, the result sends `j` back to `i`, so
/// `permute_qubits(&permute_qubits(u, perm, n), &invert_permutation(perm), n)`
/// is `u` again. The verification oracle uses this to map a pulse's
/// canonical-frame unitary back into a group's local qubit ordering.
///
/// # Panics
///
/// Panics if `perm` is not a permutation of `0..perm.len()`.
///
/// # Examples
///
/// ```
/// use accqoc_circuit::invert_permutation;
///
/// assert_eq!(invert_permutation(&[2, 0, 1]), vec![1, 2, 0]);
/// ```
pub fn invert_permutation(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![usize::MAX; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        assert!(p < perm.len(), "entry {p} out of range");
        assert!(inv[p] == usize::MAX, "entry {p} repeats");
        inv[p] = i;
    }
    inv
}

/// All permutations of `0..n` (Heap's algorithm); `n ≤ 5` in practice.
fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut items: Vec<usize> = (0..n).collect();
    let mut out = Vec::new();
    heap_permute(&mut items, n, &mut out);
    out
}

fn heap_permute(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k <= 1 {
        out.push(items.clone());
        return;
    }
    for i in 0..k {
        heap_permute(items, k - 1, out);
        if k.is_multiple_of(2) {
            items.swap(i, k - 1);
        } else {
            items.swap(0, k - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::gate::Gate;
    use crate::unitary::circuit_unitary;
    use accqoc_linalg::C64;

    #[test]
    fn phase_invariance() {
        let u = circuit_unitary(&Circuit::from_gates(1, [Gate::T(0), Gate::H(0)]));
        for k in 0..6 {
            let phased = u.scale(C64::cis(k as f64));
            assert_eq!(
                UnitaryKey::from_unitary(&u),
                UnitaryKey::from_unitary(&phased)
            );
        }
    }

    #[test]
    fn distinct_unitaries_distinct_keys() {
        let a = circuit_unitary(&Circuit::from_gates(1, [Gate::X(0)]));
        let b = circuit_unitary(&Circuit::from_gates(1, [Gate::H(0)]));
        assert_ne!(UnitaryKey::from_unitary(&a), UnitaryKey::from_unitary(&b));
    }

    #[test]
    fn permuted_qubit_groups_collide() {
        // cx(0,1) and cx(1,0) are the same operation with relabeled qubits.
        let a = circuit_unitary(&Circuit::from_gates(2, [Gate::Cx(0, 1)]));
        let b = circuit_unitary(&Circuit::from_gates(2, [Gate::Cx(1, 0)]));
        assert_ne!(UnitaryKey::from_unitary(&a), UnitaryKey::from_unitary(&b));
        assert_eq!(UnitaryKey::canonical(&a, 2), UnitaryKey::canonical(&b, 2));
    }

    #[test]
    fn permutation_canonical_separates_truly_different_groups() {
        let a = circuit_unitary(&Circuit::from_gates(2, [Gate::Cx(0, 1), Gate::H(0)]));
        let b = circuit_unitary(&Circuit::from_gates(2, [Gate::Cz(0, 1)]));
        assert_ne!(UnitaryKey::canonical(&a, 2), UnitaryKey::canonical(&b, 2));
    }

    #[test]
    fn permute_qubits_matches_gate_relabeling() {
        // Relabeling {0→1, 1→0} of the circuit equals permute_qubits of its unitary.
        let c = Circuit::from_gates(2, [Gate::H(0), Gate::Cx(0, 1), Gate::T(1)]);
        let relabeled = c.remapped(|q| 1 - q);
        let via_matrix = permute_qubits(&circuit_unitary(&c), &[1, 0], 2);
        let via_circuit = circuit_unitary(&relabeled);
        assert!(via_matrix.approx_eq(&via_circuit, 1e-12));
    }

    #[test]
    fn canonical_permutation_reported() {
        let a = circuit_unitary(&Circuit::from_gates(2, [Gate::Cx(0, 1)]));
        let b = circuit_unitary(&Circuit::from_gates(2, [Gate::Cx(1, 0)]));
        let (ka, pa) = UnitaryKey::canonical_with_permutation(&a, 2);
        let (kb, pb) = UnitaryKey::canonical_with_permutation(&b, 2);
        assert_eq!(ka, kb);
        // Applying the reported permutations to the inputs yields the same matrix key.
        let ca = permute_qubits(&a, &pa, 2);
        let cb = permute_qubits(&b, &pb, 2);
        assert_eq!(UnitaryKey::from_unitary(&ca), UnitaryKey::from_unitary(&cb));
    }

    #[test]
    fn invert_permutation_round_trips() {
        let u = circuit_unitary(&Circuit::from_gates(
            3,
            [Gate::Cx(0, 1), Gate::T(2), Gate::H(0)],
        ));
        let perm = vec![2, 0, 1];
        let inv = invert_permutation(&perm);
        assert_eq!(inv, vec![1, 2, 0]);
        let back = permute_qubits(&permute_qubits(&u, &perm, 3), &inv, 3);
        assert!(back.approx_eq(&u, 1e-13));
        assert_eq!(invert_permutation(&[0, 1]), vec![0, 1]);
        assert_eq!(invert_permutation(&[]), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "repeats")]
    fn invert_permutation_rejects_duplicates() {
        let _ = invert_permutation(&[0, 0, 1]);
    }

    #[test]
    fn single_qubit_canonical_is_plain_key() {
        let u = circuit_unitary(&Circuit::from_gates(1, [Gate::H(0)]));
        assert_eq!(UnitaryKey::canonical(&u, 1), UnitaryKey::from_unitary(&u));
    }

    #[test]
    fn three_qubit_permutation_classes() {
        // ccx(0,1,2) and ccx(1,0,2) coincide (controls commute) even without
        // permutation canonicalization; ccx(0,2,1) needs relabeling.
        let a = circuit_unitary(&Circuit::from_gates(3, [Gate::Ccx(0, 1, 2)]));
        let b = circuit_unitary(&Circuit::from_gates(3, [Gate::Ccx(1, 0, 2)]));
        let c = circuit_unitary(&Circuit::from_gates(3, [Gate::Ccx(0, 2, 1)]));
        assert_eq!(UnitaryKey::from_unitary(&a), UnitaryKey::from_unitary(&b));
        assert_ne!(UnitaryKey::from_unitary(&a), UnitaryKey::from_unitary(&c));
        assert_eq!(UnitaryKey::canonical(&a, 3), UnitaryKey::canonical(&c, 3));
    }

    #[test]
    fn permutations_count() {
        assert_eq!(permutations(1).len(), 1);
        assert_eq!(permutations(2).len(), 2);
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(4).len(), 24);
    }

    #[test]
    fn keys_are_ord_and_hash() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(UnitaryKey::from_unitary(&Mat::identity(2)));
        set.insert(UnitaryKey::from_unitary(&Mat::identity(2)));
        assert_eq!(set.len(), 1);
    }
}
