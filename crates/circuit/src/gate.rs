//! The quantum gate set.
//!
//! Covers the gates appearing in the paper's benchmarks (Table II:
//! `x, t, h, cx, rz, tdg`), the IBM basis (`u1, u2, u3, cx`) the paper's
//! Figure 3 shows, and the high-level gates (`ccx`, `swap`) that must be
//! decomposed before hitting hardware (paper Figure 2).

use std::f64::consts::{FRAC_1_SQRT_2, FRAC_PI_4};

use accqoc_linalg::{Mat, C64, ONE, ZERO};

/// A gate application: an operation together with its qubit operands.
///
/// Angles are in radians. Two-qubit gates list `(control, target)` except
/// for the symmetric [`Gate::Cz`] and [`Gate::Swap`].
///
/// # Examples
///
/// ```
/// use accqoc_circuit::Gate;
///
/// let g = Gate::Cx(0, 1);
/// assert_eq!(g.qubits(), vec![0, 1]);
/// assert_eq!(g.kind().name(), "cx");
/// assert!(g.matrix().is_unitary(1e-12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Pauli-X (NOT).
    X(usize),
    /// Pauli-Y.
    Y(usize),
    /// Pauli-Z.
    Z(usize),
    /// Hadamard.
    H(usize),
    /// Phase gate `S = diag(1, i)`.
    S(usize),
    /// Inverse phase gate.
    Sdg(usize),
    /// `T = diag(1, e^{iπ/4})`.
    T(usize),
    /// Inverse T.
    Tdg(usize),
    /// Rotation about X by the given angle.
    Rx(usize, f64),
    /// Rotation about Y by the given angle.
    Ry(usize, f64),
    /// Rotation about Z by the given angle.
    Rz(usize, f64),
    /// IBM `u1(λ) = diag(1, e^{iλ})`.
    U1(usize, f64),
    /// IBM `u2(φ, λ)`.
    U2(usize, f64, f64),
    /// IBM `u3(θ, φ, λ)` — general single-qubit rotation.
    U3(usize, f64, f64, f64),
    /// Controlled-X with `(control, target)`.
    Cx(usize, usize),
    /// Controlled-Z (symmetric).
    Cz(usize, usize),
    /// SWAP (symmetric).
    Swap(usize, usize),
    /// Toffoli (controlled-controlled-X) with `(control, control, target)`.
    Ccx(usize, usize, usize),
}

/// The operation kind of a gate, independent of operands and parameters.
///
/// Used for instruction-mix statistics (paper Table II) and duration
/// lookup tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum GateKind {
    X,
    Y,
    Z,
    H,
    S,
    Sdg,
    T,
    Tdg,
    Rx,
    Ry,
    Rz,
    U1,
    U2,
    U3,
    Cx,
    Cz,
    Swap,
    Ccx,
}

impl GateKind {
    /// Lower-case QASM mnemonic of the kind.
    pub fn name(self) -> &'static str {
        match self {
            Self::X => "x",
            Self::Y => "y",
            Self::Z => "z",
            Self::H => "h",
            Self::S => "s",
            Self::Sdg => "sdg",
            Self::T => "t",
            Self::Tdg => "tdg",
            Self::Rx => "rx",
            Self::Ry => "ry",
            Self::Rz => "rz",
            Self::U1 => "u1",
            Self::U2 => "u2",
            Self::U3 => "u3",
            Self::Cx => "cx",
            Self::Cz => "cz",
            Self::Swap => "swap",
            Self::Ccx => "ccx",
        }
    }

    /// All kinds, in declaration order.
    pub fn all() -> &'static [GateKind] {
        use GateKind::*;
        &[
            X, Y, Z, H, S, Sdg, T, Tdg, Rx, Ry, Rz, U1, U2, U3, Cx, Cz, Swap, Ccx,
        ]
    }
}

impl Gate {
    /// The operation kind, discarding operands and parameters.
    pub fn kind(&self) -> GateKind {
        match self {
            Gate::X(_) => GateKind::X,
            Gate::Y(_) => GateKind::Y,
            Gate::Z(_) => GateKind::Z,
            Gate::H(_) => GateKind::H,
            Gate::S(_) => GateKind::S,
            Gate::Sdg(_) => GateKind::Sdg,
            Gate::T(_) => GateKind::T,
            Gate::Tdg(_) => GateKind::Tdg,
            Gate::Rx(..) => GateKind::Rx,
            Gate::Ry(..) => GateKind::Ry,
            Gate::Rz(..) => GateKind::Rz,
            Gate::U1(..) => GateKind::U1,
            Gate::U2(..) => GateKind::U2,
            Gate::U3(..) => GateKind::U3,
            Gate::Cx(..) => GateKind::Cx,
            Gate::Cz(..) => GateKind::Cz,
            Gate::Swap(..) => GateKind::Swap,
            Gate::Ccx(..) => GateKind::Ccx,
        }
    }

    /// Operand qubits, in gate order (control first where applicable).
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            Gate::X(q)
            | Gate::Y(q)
            | Gate::Z(q)
            | Gate::H(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::T(q)
            | Gate::Tdg(q)
            | Gate::Rx(q, _)
            | Gate::Ry(q, _)
            | Gate::Rz(q, _)
            | Gate::U1(q, _)
            | Gate::U2(q, _, _)
            | Gate::U3(q, _, _, _) => vec![q],
            Gate::Cx(a, b) | Gate::Cz(a, b) | Gate::Swap(a, b) => vec![a, b],
            Gate::Ccx(a, b, c) => vec![a, b, c],
        }
    }

    /// Number of operand qubits.
    pub fn arity(&self) -> usize {
        match self {
            Gate::Cx(..) | Gate::Cz(..) | Gate::Swap(..) => 2,
            Gate::Ccx(..) => 3,
            _ => 1,
        }
    }

    /// `true` for 2-qubit gates.
    pub fn is_two_qubit(&self) -> bool {
        self.arity() == 2
    }

    /// Rewrites operand qubits through `f` (used when applying layouts).
    pub fn remap(&self, f: impl Fn(usize) -> usize) -> Gate {
        match *self {
            Gate::X(q) => Gate::X(f(q)),
            Gate::Y(q) => Gate::Y(f(q)),
            Gate::Z(q) => Gate::Z(f(q)),
            Gate::H(q) => Gate::H(f(q)),
            Gate::S(q) => Gate::S(f(q)),
            Gate::Sdg(q) => Gate::Sdg(f(q)),
            Gate::T(q) => Gate::T(f(q)),
            Gate::Tdg(q) => Gate::Tdg(f(q)),
            Gate::Rx(q, a) => Gate::Rx(f(q), a),
            Gate::Ry(q, a) => Gate::Ry(f(q), a),
            Gate::Rz(q, a) => Gate::Rz(f(q), a),
            Gate::U1(q, a) => Gate::U1(f(q), a),
            Gate::U2(q, a, b) => Gate::U2(f(q), a, b),
            Gate::U3(q, a, b, c) => Gate::U3(f(q), a, b, c),
            Gate::Cx(a, b) => Gate::Cx(f(a), f(b)),
            Gate::Cz(a, b) => Gate::Cz(f(a), f(b)),
            Gate::Swap(a, b) => Gate::Swap(f(a), f(b)),
            Gate::Ccx(a, b, c) => Gate::Ccx(f(a), f(b), f(c)),
        }
    }

    /// Local unitary matrix of the gate on its own operands, with the first
    /// listed operand as the most significant bit (big-endian).
    pub fn matrix(&self) -> Mat {
        match *self {
            Gate::X(_) => Mat::from_reals(&[0.0, 1.0, 1.0, 0.0]),
            Gate::Y(_) => Mat::from_flat(&[ZERO, C64::imag(-1.0), C64::imag(1.0), ZERO]),
            Gate::Z(_) => Mat::from_reals(&[1.0, 0.0, 0.0, -1.0]),
            Gate::H(_) => {
                Mat::from_reals(&[FRAC_1_SQRT_2, FRAC_1_SQRT_2, FRAC_1_SQRT_2, -FRAC_1_SQRT_2])
            }
            Gate::S(_) => Mat::from_flat(&[ONE, ZERO, ZERO, C64::imag(1.0)]),
            Gate::Sdg(_) => Mat::from_flat(&[ONE, ZERO, ZERO, C64::imag(-1.0)]),
            Gate::T(_) => Mat::from_flat(&[ONE, ZERO, ZERO, C64::cis(FRAC_PI_4)]),
            Gate::Tdg(_) => Mat::from_flat(&[ONE, ZERO, ZERO, C64::cis(-FRAC_PI_4)]),
            Gate::Rx(_, theta) => {
                let (s, c) = ((theta / 2.0).sin(), (theta / 2.0).cos());
                Mat::from_flat(&[C64::real(c), C64::imag(-s), C64::imag(-s), C64::real(c)])
            }
            Gate::Ry(_, theta) => {
                let (s, c) = ((theta / 2.0).sin(), (theta / 2.0).cos());
                Mat::from_reals(&[c, -s, s, c])
            }
            Gate::Rz(_, theta) => {
                Mat::from_flat(&[C64::cis(-theta / 2.0), ZERO, ZERO, C64::cis(theta / 2.0)])
            }
            Gate::U1(_, lambda) => Mat::from_flat(&[ONE, ZERO, ZERO, C64::cis(lambda)]),
            Gate::U2(q, phi, lambda) => {
                Gate::U3(q, std::f64::consts::FRAC_PI_2, phi, lambda).matrix()
            }
            Gate::U3(_, theta, phi, lambda) => {
                let (s, c) = ((theta / 2.0).sin(), (theta / 2.0).cos());
                Mat::from_flat(&[
                    C64::real(c),
                    -C64::cis(lambda).scale(s),
                    C64::cis(phi).scale(s),
                    C64::cis(phi + lambda).scale(c),
                ])
            }
            Gate::Cx(..) => Mat::from_reals(&[
                1.0, 0.0, 0.0, 0.0, //
                0.0, 1.0, 0.0, 0.0, //
                0.0, 0.0, 0.0, 1.0, //
                0.0, 0.0, 1.0, 0.0,
            ]),
            Gate::Cz(..) => Mat::from_reals(&[
                1.0, 0.0, 0.0, 0.0, //
                0.0, 1.0, 0.0, 0.0, //
                0.0, 0.0, 1.0, 0.0, //
                0.0, 0.0, 0.0, -1.0,
            ]),
            Gate::Swap(..) => Mat::from_reals(&[
                1.0, 0.0, 0.0, 0.0, //
                0.0, 0.0, 1.0, 0.0, //
                0.0, 1.0, 0.0, 0.0, //
                0.0, 0.0, 0.0, 1.0,
            ]),
            Gate::Ccx(..) => {
                let mut m = Mat::identity(8);
                m[(6, 6)] = ZERO;
                m[(7, 7)] = ZERO;
                m[(6, 7)] = ONE;
                m[(7, 6)] = ONE;
                m
            }
        }
    }

    /// Decomposes the gate into hardware-basis gates.
    ///
    /// - `ccx` expands to the standard 15-gate network over
    ///   `{h, t, tdg, cx}` (paper Figure 2).
    /// - `swap` expands to three CNOTs (the "map" policies of §IV-B).
    /// - Everything else is returned unchanged.
    ///
    /// # Examples
    ///
    /// ```
    /// use accqoc_circuit::Gate;
    /// assert_eq!(Gate::Ccx(0, 1, 2).decompose().len(), 15);
    /// assert_eq!(Gate::Swap(0, 1).decompose().len(), 3);
    /// assert_eq!(Gate::H(0).decompose(), vec![Gate::H(0)]);
    /// ```
    pub fn decompose(&self) -> Vec<Gate> {
        match *self {
            Gate::Ccx(a, b, c) => vec![
                Gate::H(c),
                Gate::Cx(b, c),
                Gate::Tdg(c),
                Gate::Cx(a, c),
                Gate::T(c),
                Gate::Cx(b, c),
                Gate::Tdg(c),
                Gate::Cx(a, c),
                Gate::T(b),
                Gate::T(c),
                Gate::H(c),
                Gate::Cx(a, b),
                Gate::T(a),
                Gate::Tdg(b),
                Gate::Cx(a, b),
            ],
            Gate::Swap(a, b) => vec![Gate::Cx(a, b), Gate::Cx(b, a), Gate::Cx(a, b)],
            g => vec![g],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accqoc_linalg::approx_eq_up_to_phase;
    use std::f64::consts::PI;

    #[test]
    fn all_gate_matrices_are_unitary() {
        let gates = [
            Gate::X(0),
            Gate::Y(0),
            Gate::Z(0),
            Gate::H(0),
            Gate::S(0),
            Gate::Sdg(0),
            Gate::T(0),
            Gate::Tdg(0),
            Gate::Rx(0, 0.7),
            Gate::Ry(0, -1.3),
            Gate::Rz(0, 2.2),
            Gate::U1(0, 0.4),
            Gate::U2(0, 0.3, -0.8),
            Gate::U3(0, 1.0, 0.5, -0.2),
            Gate::Cx(0, 1),
            Gate::Cz(0, 1),
            Gate::Swap(0, 1),
            Gate::Ccx(0, 1, 2),
        ];
        for g in gates {
            assert!(g.matrix().is_unitary(1e-12), "{g:?}");
            assert_eq!(g.matrix().rows(), 1 << g.arity(), "{g:?}");
        }
    }

    #[test]
    fn adjoint_pairs_cancel() {
        let pairs = [(Gate::S(0), Gate::Sdg(0)), (Gate::T(0), Gate::Tdg(0))];
        for (a, b) in pairs {
            let prod = a.matrix().matmul(&b.matrix());
            assert!(prod.approx_eq(&Mat::identity(2), 1e-12), "{a:?}·{b:?}");
        }
    }

    #[test]
    fn t_squared_is_s() {
        let t2 = Gate::T(0).matrix().matmul(&Gate::T(0).matrix());
        assert!(t2.approx_eq(&Gate::S(0).matrix(), 1e-12));
    }

    #[test]
    fn rotations_compose_additively() {
        let a = Gate::Rz(0, 0.4).matrix().matmul(&Gate::Rz(0, 1.1).matrix());
        assert!(a.approx_eq(&Gate::Rz(0, 1.5).matrix(), 1e-12));
    }

    #[test]
    fn rx_pi_is_x_up_to_phase() {
        assert!(approx_eq_up_to_phase(
            &Gate::Rx(0, PI).matrix(),
            &Gate::X(0).matrix(),
            1e-12
        ));
        assert!(approx_eq_up_to_phase(
            &Gate::Rz(0, PI).matrix(),
            &Gate::Z(0).matrix(),
            1e-12
        ));
    }

    #[test]
    fn u_gates_reduce_properly() {
        // u1(λ) == u3(0, 0, λ) exactly in this convention.
        let u1 = Gate::U1(0, 0.9).matrix();
        let u3 = Gate::U3(0, 0.0, 0.0, 0.9).matrix();
        assert!(u1.approx_eq(&u3, 1e-12));
        // u2(φ,λ) == u3(π/2, φ, λ).
        let u2 = Gate::U2(0, 0.3, 0.7).matrix();
        let u3b = Gate::U3(0, PI / 2.0, 0.3, 0.7).matrix();
        assert!(u2.approx_eq(&u3b, 1e-12));
        // h == u2(0, π) up to phase.
        assert!(approx_eq_up_to_phase(
            &Gate::H(0).matrix(),
            &Gate::U2(0, 0.0, PI).matrix(),
            1e-12
        ));
    }

    #[test]
    fn cx_action_on_basis() {
        let cx = Gate::Cx(0, 1).matrix();
        // |10⟩ → |11⟩ (control = MSB set).
        assert_eq!(cx[(3, 2)], ONE);
        assert_eq!(cx[(2, 3)], ONE);
        // |00⟩, |01⟩ fixed.
        assert_eq!(cx[(0, 0)], ONE);
        assert_eq!(cx[(1, 1)], ONE);
    }

    #[test]
    fn swap_decomposition_is_exact() {
        let decomp = Gate::Swap(0, 1).decompose();
        let mut u = Mat::identity(4);
        for g in &decomp {
            // Both qubits of every cx in the decomposition are within {0,1};
            // orient the 4×4 by control position.
            let m = match g {
                Gate::Cx(0, 1) => g.matrix(),
                Gate::Cx(1, 0) => g.matrix().permute_basis(&[0, 2, 1, 3]),
                _ => panic!("unexpected gate {g:?}"),
            };
            u = m.matmul(&u);
        }
        assert!(u.approx_eq(&Gate::Swap(0, 1).matrix(), 1e-12));
    }

    #[test]
    fn gate_kind_names() {
        assert_eq!(Gate::Tdg(3).kind().name(), "tdg");
        assert_eq!(Gate::Ccx(0, 1, 2).kind().name(), "ccx");
        assert_eq!(GateKind::all().len(), 18);
    }

    #[test]
    fn remap_applies_to_all_operands() {
        let g = Gate::Ccx(0, 1, 2).remap(|q| q + 10);
        assert_eq!(g.qubits(), vec![10, 11, 12]);
        let g = Gate::Rz(5, 0.1).remap(|q| q * 2);
        assert_eq!(g.qubits(), vec![10]);
    }
}
