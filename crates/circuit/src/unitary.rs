//! Circuit-to-unitary evaluation.
//!
//! A gate group "is equivalent to a matrix" (paper §I): this module turns
//! (small) circuits into their unitary matrices. The convention is
//! big-endian — qubit 0 is the most significant bit of the basis index.
//!
//! Dimensions grow as `2^n`, so this is only meant for gate groups and
//! test circuits (the paper's groups are ≤ 2 qubits; the brute-force
//! baseline caps at 5).

use accqoc_linalg::{Mat, ZERO};

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Maximum register size accepted by dense unitary evaluation.
pub const MAX_DENSE_QUBITS: usize = 12;

/// Applies `gate_matrix` (a `2^k × 2^k` unitary over the listed `qubits`,
/// first listed qubit = most significant) to `u` from the left:
/// `u ← G_embedded · u`.
///
/// # Panics
///
/// Panics if dimensions are inconsistent or a qubit index repeats.
pub fn apply_unitary(u: &mut Mat, gate_matrix: &Mat, qubits: &[usize], n_qubits: usize) {
    let k = qubits.len();
    assert_eq!(
        gate_matrix.rows(),
        1 << k,
        "gate matrix size vs operand count"
    );
    assert!(gate_matrix.is_square());
    assert_eq!(u.rows(), 1 << n_qubits, "state dimension mismatch");
    for (i, &q) in qubits.iter().enumerate() {
        assert!(q < n_qubits, "qubit {q} out of range");
        assert!(!qubits[..i].contains(&q), "repeated qubit {q}");
    }

    let dim = 1 << n_qubits;
    let sub = 1 << k;
    // Bit position (from LSB) of each gate operand.
    let bitpos: Vec<usize> = qubits.iter().map(|&q| n_qubits - 1 - q).collect();

    // Enumerate all basis indices with the gate-operand bits cleared, then
    // for each such "rest" pattern gather/transform/scatter the sub-vector.
    let mut gathered = vec![ZERO; sub];
    let operand_mask: usize = bitpos.iter().map(|&b| 1usize << b).sum();

    for col in 0..u.cols() {
        let mut rest = 0usize;
        loop {
            if rest & operand_mask == 0 {
                // Gather x[m] = u[rest | bits(m), col].
                for (m, slot) in gathered.iter_mut().enumerate() {
                    let mut idx = rest;
                    for (g_bit, &bp) in bitpos.iter().enumerate() {
                        if m >> (k - 1 - g_bit) & 1 == 1 {
                            idx |= 1 << bp;
                        }
                    }
                    *slot = u[(idx, col)];
                }
                // y = G · x, scattered back.
                for (row_local, _) in gathered.iter().enumerate() {
                    let mut acc = ZERO;
                    for (m, &x) in gathered.iter().enumerate() {
                        acc = gate_matrix[(row_local, m)].mul_add(x, acc);
                    }
                    let mut idx = rest;
                    for (g_bit, &bp) in bitpos.iter().enumerate() {
                        if row_local >> (k - 1 - g_bit) & 1 == 1 {
                            idx |= 1 << bp;
                        }
                    }
                    u[(idx, col)] = acc;
                }
            }
            rest += 1;
            if rest >= dim {
                break;
            }
        }
    }
}

/// Embeds a small unitary over the listed qubits into the full
/// `2^n`-dimensional space.
///
/// # Panics
///
/// Panics on dimension mismatch (see [`apply_unitary`]).
pub fn embed_unitary(gate_matrix: &Mat, qubits: &[usize], n_qubits: usize) -> Mat {
    let mut u = Mat::identity(1 << n_qubits);
    apply_unitary(&mut u, gate_matrix, qubits, n_qubits);
    u
}

/// Computes the full unitary of a circuit (product of embedded gate
/// matrices, later gates applied on the left).
///
/// # Panics
///
/// Panics if the circuit is wider than [`MAX_DENSE_QUBITS`].
///
/// # Examples
///
/// ```
/// use accqoc_circuit::{circuit_unitary, Circuit, Gate};
/// use accqoc_linalg::Mat;
///
/// // H·H = I.
/// let c = Circuit::from_gates(1, [Gate::H(0), Gate::H(0)]);
/// assert!(circuit_unitary(&c).approx_eq(&Mat::identity(2), 1e-12));
/// ```
pub fn circuit_unitary(circuit: &Circuit) -> Mat {
    assert!(
        circuit.n_qubits() <= MAX_DENSE_QUBITS,
        "dense unitary limited to {MAX_DENSE_QUBITS} qubits, got {}",
        circuit.n_qubits()
    );
    let mut u = Mat::identity(1 << circuit.n_qubits());
    for gate in circuit.iter() {
        apply_gate(&mut u, gate, circuit.n_qubits());
    }
    u
}

/// Applies one gate to a running unitary: `u ← G · u`.
pub fn apply_gate(u: &mut Mat, gate: &Gate, n_qubits: usize) {
    let m = gate.matrix();
    apply_unitary(u, &m, &gate.qubits(), n_qubits);
}

#[cfg(test)]
mod tests {
    use super::*;
    use accqoc_linalg::{approx_eq_up_to_phase, C64, ONE};

    #[test]
    fn single_gate_on_single_qubit() {
        let c = Circuit::from_gates(1, [Gate::X(0)]);
        assert!(circuit_unitary(&c).approx_eq(&Gate::X(0).matrix(), 1e-14));
    }

    #[test]
    fn embedding_matches_kron_msb_convention() {
        // X on qubit 0 of 2 ⇒ X ⊗ I; X on qubit 1 ⇒ I ⊗ X.
        let x = Gate::X(0).matrix();
        let id = Mat::identity(2);
        assert!(embed_unitary(&x, &[0], 2).approx_eq(&x.kron(&id), 1e-14));
        assert!(embed_unitary(&x, &[1], 2).approx_eq(&id.kron(&x), 1e-14));
    }

    #[test]
    fn cx_orientation() {
        // cx(0,1): control is qubit 0 (MSB). |10⟩=index 2 → |11⟩=index 3.
        let u = circuit_unitary(&Circuit::from_gates(2, [Gate::Cx(0, 1)]));
        assert_eq!(u[(3, 2)], ONE);
        assert_eq!(u[(2, 3)], ONE);
        // cx(1,0): control is qubit 1 (LSB). |01⟩=index 1 → |11⟩=index 3.
        let u = circuit_unitary(&Circuit::from_gates(2, [Gate::Cx(1, 0)]));
        assert_eq!(u[(3, 1)], ONE);
        assert_eq!(u[(1, 3)], ONE);
    }

    #[test]
    fn bell_circuit_unitary() {
        let c = Circuit::from_gates(2, [Gate::H(0), Gate::Cx(0, 1)]);
        let u = circuit_unitary(&c);
        // Column 0 (input |00⟩) is the Bell state (|00⟩ + |11⟩)/√2.
        let r = std::f64::consts::FRAC_1_SQRT_2;
        assert!(u[(0, 0)].approx_eq(C64::real(r), 1e-12));
        assert!(u[(3, 0)].approx_eq(C64::real(r), 1e-12));
        assert!(u[(1, 0)].abs() < 1e-12);
        assert!(u[(2, 0)].abs() < 1e-12);
        assert!(u.is_unitary(1e-12));
    }

    #[test]
    fn toffoli_decomposition_matches_ccx_matrix() {
        let direct = circuit_unitary(&Circuit::from_gates(3, [Gate::Ccx(0, 1, 2)]));
        let decomposed = circuit_unitary(&Circuit::from_gates(3, Gate::Ccx(0, 1, 2).decompose()));
        assert!(
            approx_eq_up_to_phase(&direct, &decomposed, 1e-12),
            "max diff {}",
            direct.max_abs_diff(&decomposed)
        );
    }

    #[test]
    fn swap_decomposition_matches_swap_matrix() {
        let direct = circuit_unitary(&Circuit::from_gates(2, [Gate::Swap(0, 1)]));
        let decomposed = circuit_unitary(&Circuit::from_gates(2, Gate::Swap(0, 1).decompose()));
        assert!(direct.approx_eq(&decomposed, 1e-12));
    }

    #[test]
    fn swap_on_nonadjacent_qubits() {
        // swap(0,2) in a 3-qubit register exchanges bits 2 and 0 of the index.
        let u = circuit_unitary(&Circuit::from_gates(3, [Gate::Swap(0, 2)]));
        // |100⟩ = 4 ↔ |001⟩ = 1.
        assert_eq!(u[(1, 4)], ONE);
        assert_eq!(u[(4, 1)], ONE);
        assert_eq!(u[(0, 0)], ONE);
        assert_eq!(u[(5, 5)], ONE); // |101⟩ fixed
    }

    #[test]
    fn gate_order_is_right_to_left_product() {
        // Circuit [A, B] implements B·A.
        let c = Circuit::from_gates(1, [Gate::H(0), Gate::T(0)]);
        let expect = Gate::T(0).matrix().matmul(&Gate::H(0).matrix());
        assert!(circuit_unitary(&c).approx_eq(&expect, 1e-14));
    }

    #[test]
    fn composition_is_unitary_for_random_circuit() {
        let gates = [
            Gate::H(0),
            Gate::Cx(0, 1),
            Gate::T(1),
            Gate::Cx(1, 2),
            Gate::Rz(2, 0.37),
            Gate::Cx(2, 0),
            Gate::U3(1, 0.3, 0.8, -0.4),
        ];
        let u = circuit_unitary(&Circuit::from_gates(3, gates));
        assert!(u.is_unitary(1e-11));
    }

    #[test]
    #[should_panic(expected = "dense unitary limited")]
    fn too_wide_circuit_rejected() {
        let _ = circuit_unitary(&Circuit::new(MAX_DENSE_QUBITS + 1));
    }

    #[test]
    #[should_panic(expected = "repeated qubit")]
    fn repeated_operand_rejected() {
        let mut u = Mat::identity(4);
        apply_unitary(&mut u, &Mat::identity(4), &[0, 0], 2);
    }
}
