//! Quantum circuit intermediate representation for the AccQOC
//! reproduction.
//!
//! Provides the gate set used by the paper's benchmarks, circuits and
//! their dependency DAGs, an OpenQASM 2.0 subset parser/emitter, dense
//! circuit-to-unitary evaluation, and unitary de-duplication keys
//! (canonical up to global phase and qubit permutation, paper §IV-C).
//!
//! # Example
//!
//! ```
//! use accqoc_circuit::{circuit_unitary, parse_qasm, CircuitDag};
//!
//! let c = parse_qasm("qreg q[2]; h q[0]; cx q[0],q[1];")?;
//! let dag = CircuitDag::from_circuit(&c);
//! assert_eq!(dag.depth(), 2);
//! assert!(circuit_unitary(&c).is_unitary(1e-12));
//! # Ok::<(), accqoc_circuit::QasmError>(())
//! ```

#![warn(missing_docs)]

mod circuit;
mod dag;
mod gate;
mod key;
mod qasm;
mod unitary;

pub use circuit::Circuit;
pub use dag::{CircuitDag, DagNode};
pub use gate::{Gate, GateKind};
pub use key::{invert_permutation, permute_qubits, UnitaryKey, KEY_EPS};
pub use qasm::{parse_qasm, to_qasm, QasmError};
pub use unitary::{apply_gate, apply_unitary, circuit_unitary, embed_unitary, MAX_DENSE_QUBITS};
