//! OpenQASM 2.0 subset parser and emitter.
//!
//! The paper's benchmarks originate as RevLib/ScaffCC QASM files; this
//! module reads and writes the subset those programs use: one or more
//! `qreg`s, the gate set of [`crate::Gate`], `measure`/`barrier`
//! (skipped), and arithmetic angle expressions over `pi`.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Errors produced while parsing QASM source.
#[derive(Debug, Clone, PartialEq)]
pub struct QasmError {
    /// 1-based line of the offending statement.
    pub line: usize,
    /// Explanation of the failure.
    pub message: String,
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "qasm parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for QasmError {}

/// Parses an OpenQASM 2.0 program into a [`Circuit`].
///
/// Multiple `qreg` declarations are flattened into one register in
/// declaration order. `creg`, `measure`, `barrier`, `include`, and the
/// version header are accepted and ignored.
///
/// # Errors
///
/// Returns [`QasmError`] on unknown gates, malformed operands, references
/// to undeclared registers, or angle-expression syntax errors.
///
/// # Examples
///
/// ```
/// use accqoc_circuit::{parse_qasm, Gate};
///
/// let src = r#"
///     OPENQASM 2.0;
///     include "qelib1.inc";
///     qreg q[2];
///     h q[0];
///     cx q[0], q[1];
///     rz(pi/4) q[1];
/// "#;
/// let c = parse_qasm(src)?;
/// assert_eq!(c.len(), 3);
/// assert_eq!(c.gates()[1], Gate::Cx(0, 1));
/// # Ok::<(), accqoc_circuit::QasmError>(())
/// ```
pub fn parse_qasm(source: &str) -> Result<Circuit, QasmError> {
    let mut registers: HashMap<String, (usize, usize)> = HashMap::new(); // name → (offset, size)
    let mut total_qubits = 0usize;
    let mut gates: Vec<Gate> = Vec::new();

    for (line_idx, raw_line) in source.lines().enumerate() {
        let line_no = line_idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        // A line may contain several `;`-terminated statements.
        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            parse_statement(stmt, line_no, &mut registers, &mut total_qubits, &mut gates)?;
        }
    }
    let mut circuit = Circuit::new(total_qubits);
    for g in gates {
        circuit.push(g);
    }
    Ok(circuit)
}

fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn parse_statement(
    stmt: &str,
    line: usize,
    registers: &mut HashMap<String, (usize, usize)>,
    total_qubits: &mut usize,
    gates: &mut Vec<Gate>,
) -> Result<(), QasmError> {
    let err = |message: String| QasmError { line, message };

    if stmt.starts_with("OPENQASM") || stmt.starts_with("include") {
        return Ok(());
    }
    if let Some(rest) = stmt.strip_prefix("qreg") {
        let (name, size) = parse_reg_decl(rest.trim()).map_err(&err)?;
        registers.insert(name, (*total_qubits, size));
        *total_qubits += size;
        return Ok(());
    }
    if stmt.starts_with("creg") || stmt.starts_with("barrier") || stmt.starts_with("measure") {
        return Ok(());
    }

    // Gate statement: name[(params)] operand[, operand]*
    let (head, operands_str) = match stmt.find(|c: char| c.is_whitespace()) {
        Some(pos) if !stmt[..pos].contains('(') || stmt[..pos].contains(')') => {
            (&stmt[..pos], &stmt[pos..])
        }
        _ => {
            // Parameterized gate may contain spaces inside parens; split at
            // the closing paren instead.
            match stmt.find(')') {
                Some(pos) => (&stmt[..=pos], &stmt[pos + 1..]),
                None => return Err(err(format!("malformed statement: {stmt:?}"))),
            }
        }
    };
    let (name, params) = parse_gate_head(head.trim(), line)?;
    let operands: Vec<usize> = operands_str
        .split(',')
        .map(|op| resolve_operand(op.trim(), registers, line))
        .collect::<Result<_, _>>()?;

    let gate = build_gate(&name, &params, &operands, line)?;
    gates.push(gate);
    Ok(())
}

fn parse_reg_decl(decl: &str) -> Result<(String, usize), String> {
    // e.g. "q[14]"
    let open = decl
        .find('[')
        .ok_or_else(|| format!("bad register declaration {decl:?}"))?;
    let close = decl
        .find(']')
        .ok_or_else(|| format!("bad register declaration {decl:?}"))?;
    let name = decl[..open].trim().to_string();
    let size: usize = decl[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| format!("bad register size in {decl:?}"))?;
    if name.is_empty() {
        return Err(format!("empty register name in {decl:?}"));
    }
    Ok((name, size))
}

fn parse_gate_head(head: &str, line: usize) -> Result<(String, Vec<f64>), QasmError> {
    if let Some(open) = head.find('(') {
        let close = head.rfind(')').ok_or_else(|| QasmError {
            line,
            message: format!("missing ')' in {head:?}"),
        })?;
        let name = head[..open].trim().to_lowercase();
        let params = head[open + 1..close]
            .split(',')
            .map(|e| eval_expr(e.trim()).map_err(|m| QasmError { line, message: m }))
            .collect::<Result<Vec<f64>, _>>()?;
        Ok((name, params))
    } else {
        Ok((head.to_lowercase(), Vec::new()))
    }
}

fn resolve_operand(
    op: &str,
    registers: &HashMap<String, (usize, usize)>,
    line: usize,
) -> Result<usize, QasmError> {
    let err = |message: String| QasmError { line, message };
    let open = op
        .find('[')
        .ok_or_else(|| err(format!("expected reg[idx], got {op:?}")))?;
    let close = op
        .find(']')
        .ok_or_else(|| err(format!("expected reg[idx], got {op:?}")))?;
    let name = op[..open].trim();
    let idx: usize = op[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| err(format!("bad qubit index in {op:?}")))?;
    let &(offset, size) = registers
        .get(name)
        .ok_or_else(|| err(format!("unknown register {name:?}")))?;
    if idx >= size {
        return Err(err(format!(
            "index {idx} out of range for register {name:?} of size {size}"
        )));
    }
    Ok(offset + idx)
}

fn build_gate(
    name: &str,
    params: &[f64],
    operands: &[usize],
    line: usize,
) -> Result<Gate, QasmError> {
    let err = |message: String| QasmError { line, message };
    let need = |n_params: usize, n_ops: usize| -> Result<(), QasmError> {
        if params.len() != n_params || operands.len() != n_ops {
            Err(err(format!(
                "gate {name:?} expects {n_params} params / {n_ops} operands, got {} / {}",
                params.len(),
                operands.len()
            )))
        } else {
            Ok(())
        }
    };
    let g = match name {
        "x" => {
            need(0, 1)?;
            Gate::X(operands[0])
        }
        "y" => {
            need(0, 1)?;
            Gate::Y(operands[0])
        }
        "z" => {
            need(0, 1)?;
            Gate::Z(operands[0])
        }
        "h" => {
            need(0, 1)?;
            Gate::H(operands[0])
        }
        "s" => {
            need(0, 1)?;
            Gate::S(operands[0])
        }
        "sdg" => {
            need(0, 1)?;
            Gate::Sdg(operands[0])
        }
        "t" => {
            need(0, 1)?;
            Gate::T(operands[0])
        }
        "tdg" => {
            need(0, 1)?;
            Gate::Tdg(operands[0])
        }
        "rx" => {
            need(1, 1)?;
            Gate::Rx(operands[0], params[0])
        }
        "ry" => {
            need(1, 1)?;
            Gate::Ry(operands[0], params[0])
        }
        "rz" => {
            need(1, 1)?;
            Gate::Rz(operands[0], params[0])
        }
        "u1" => {
            need(1, 1)?;
            Gate::U1(operands[0], params[0])
        }
        "u2" => {
            need(2, 1)?;
            Gate::U2(operands[0], params[0], params[1])
        }
        "u3" => {
            need(3, 1)?;
            Gate::U3(operands[0], params[0], params[1], params[2])
        }
        "cx" | "cnot" => {
            need(0, 2)?;
            Gate::Cx(operands[0], operands[1])
        }
        "cz" => {
            need(0, 2)?;
            Gate::Cz(operands[0], operands[1])
        }
        "swap" => {
            need(0, 2)?;
            Gate::Swap(operands[0], operands[1])
        }
        "ccx" | "toffoli" => {
            need(0, 3)?;
            Gate::Ccx(operands[0], operands[1], operands[2])
        }
        other => return Err(err(format!("unsupported gate {other:?}"))),
    };
    Ok(g)
}

/// Emits a circuit as OpenQASM 2.0 with a single register `q`.
///
/// # Examples
///
/// ```
/// use accqoc_circuit::{parse_qasm, to_qasm, Circuit, Gate};
///
/// let c = Circuit::from_gates(2, [Gate::H(0), Gate::Cx(0, 1)]);
/// let round_trip = parse_qasm(&to_qasm(&c))?;
/// assert_eq!(round_trip, c);
/// # Ok::<(), accqoc_circuit::QasmError>(())
/// ```
pub fn to_qasm(circuit: &Circuit) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.n_qubits());
    for g in circuit.iter() {
        let name = g.kind().name();
        let params: Vec<f64> = match *g {
            Gate::Rx(_, a) | Gate::Ry(_, a) | Gate::Rz(_, a) | Gate::U1(_, a) => vec![a],
            Gate::U2(_, a, b) => vec![a, b],
            Gate::U3(_, a, b, c) => vec![a, b, c],
            _ => vec![],
        };
        if params.is_empty() {
            let _ = write!(out, "{name} ");
        } else {
            // `{:?}` is Rust's shortest representation that parses back
            // to exactly the same f64. Fixed-point formatting here loses
            // low bits on small angles (QFT's pi/2^k controlled phases),
            // which would make a parse(to_qasm(c)) roundtrip compile to
            // *different* unitaries than `c` — the daemon's byte-identity
            // guarantee rides on this being exact.
            let rendered: Vec<String> = params.iter().map(|p| format!("{p:?}")).collect();
            let _ = write!(out, "{name}({}) ", rendered.join(","));
        }
        let ops: Vec<String> = g.qubits().iter().map(|q| format!("q[{q}]")).collect();
        let _ = writeln!(out, "{};", ops.join(", "));
    }
    out
}

// ---------------------------------------------------------------------------
// Angle expression evaluation: +, -, *, /, unary -, parentheses, `pi`.
// ---------------------------------------------------------------------------

fn eval_expr(src: &str) -> Result<f64, String> {
    let mut p = ExprParser {
        chars: src.chars().collect(),
        pos: 0,
    };
    let v = p.expr()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing input in expression {src:?}"));
    }
    Ok(v)
}

struct ExprParser {
    chars: Vec<char>,
    pos: usize,
}

impl ExprParser {
    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.get(self.pos).copied()
    }

    fn expr(&mut self) -> Result<f64, String> {
        let mut acc = self.term()?;
        while let Some(c) = self.peek() {
            match c {
                '+' => {
                    self.pos += 1;
                    acc += self.term()?;
                }
                '-' => {
                    self.pos += 1;
                    acc -= self.term()?;
                }
                _ => break,
            }
        }
        Ok(acc)
    }

    fn term(&mut self) -> Result<f64, String> {
        let mut acc = self.factor()?;
        while let Some(c) = self.peek() {
            match c {
                '*' => {
                    self.pos += 1;
                    acc *= self.factor()?;
                }
                '/' => {
                    self.pos += 1;
                    acc /= self.factor()?;
                }
                _ => break,
            }
        }
        Ok(acc)
    }

    fn factor(&mut self) -> Result<f64, String> {
        match self.peek() {
            Some('-') => {
                self.pos += 1;
                Ok(-self.factor()?)
            }
            Some('+') => {
                self.pos += 1;
                self.factor()
            }
            Some('(') => {
                self.pos += 1;
                let v = self.expr()?;
                if self.peek() != Some(')') {
                    return Err("missing ')'".to_string());
                }
                self.pos += 1;
                Ok(v)
            }
            Some(c) if c.is_ascii_digit() || c == '.' => self.number(),
            Some(c) if c.is_ascii_alphabetic() => {
                let start = self.pos;
                while self.pos < self.chars.len() && self.chars[self.pos].is_ascii_alphanumeric() {
                    self.pos += 1;
                }
                let word: String = self.chars[start..self.pos].iter().collect();
                match word.as_str() {
                    "pi" | "PI" | "Pi" => Ok(std::f64::consts::PI),
                    other => Err(format!("unknown identifier {other:?}")),
                }
            }
            other => Err(format!("unexpected token {other:?}")),
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        let start = self.pos;
        let mut seen_e = false;
        while self.pos < self.chars.len() {
            let c = self.chars[self.pos];
            if c.is_ascii_digit() || c == '.' {
                self.pos += 1;
            } else if (c == 'e' || c == 'E') && !seen_e {
                seen_e = true;
                self.pos += 1;
                if matches!(self.chars.get(self.pos), Some('+') | Some('-')) {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse().map_err(|_| format!("bad number {text:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn parses_basic_program() {
        let src = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncreg c[3];\nh q[0];\ncx q[0], q[1];\nccx q[0],q[1],q[2];\nmeasure q[0] -> c[0];\n";
        let c = parse_qasm(src).unwrap();
        assert_eq!(c.n_qubits(), 3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.gates()[2], Gate::Ccx(0, 1, 2));
    }

    #[test]
    fn parses_angles() {
        let src = "qreg q[1];\nrz(pi/2) q[0];\nrx(-pi/4) q[0];\nu3(0.5, pi*2, 1e-3) q[0];\nu1((pi+1)/2) q[0];";
        let c = parse_qasm(src).unwrap();
        match c.gates()[0] {
            Gate::Rz(0, a) => assert!((a - PI / 2.0).abs() < 1e-15),
            ref g => panic!("unexpected {g:?}"),
        }
        match c.gates()[1] {
            Gate::Rx(0, a) => assert!((a + PI / 4.0).abs() < 1e-15),
            ref g => panic!("unexpected {g:?}"),
        }
        match c.gates()[2] {
            Gate::U3(0, a, b, cc) => {
                assert!((a - 0.5).abs() < 1e-15);
                assert!((b - 2.0 * PI).abs() < 1e-15);
                assert!((cc - 1e-3).abs() < 1e-18);
            }
            ref g => panic!("unexpected {g:?}"),
        }
        match c.gates()[3] {
            Gate::U1(0, a) => assert!((a - (PI + 1.0) / 2.0).abs() < 1e-15),
            ref g => panic!("unexpected {g:?}"),
        }
    }

    #[test]
    fn multiple_registers_flatten() {
        let src = "qreg a[2];\nqreg b[2];\ncx a[1], b[0];";
        let c = parse_qasm(src).unwrap();
        assert_eq!(c.n_qubits(), 4);
        assert_eq!(c.gates()[0], Gate::Cx(1, 2));
    }

    #[test]
    fn comments_and_blank_lines() {
        let src = "// header comment\nqreg q[1];\n\nx q[0]; // flip\n";
        let c = parse_qasm(src).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn multiple_statements_per_line() {
        let src = "qreg q[2]; h q[0]; cx q[0],q[1];";
        let c = parse_qasm(src).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn error_cases_report_lines() {
        let cases = [
            ("qreg q[1];\nbogus q[0];", "unsupported gate"),
            ("qreg q[1];\nx r[0];", "unknown register"),
            ("qreg q[1];\nx q[5];", "out of range"),
            ("qreg q[1];\nrz(foo) q[0];", "unknown identifier"),
            ("qreg q[1];\nrz(1+) q[0];", "unexpected token"),
            ("qreg q[1];\ncx q[0];", "expects 0 params / 2 operands"),
        ];
        for (src, needle) in cases {
            let e = parse_qasm(src).unwrap_err();
            assert_eq!(e.line, 2, "wrong line for {src:?}");
            assert!(
                e.to_string().contains(needle),
                "{e} should contain {needle:?}"
            );
        }
    }

    #[test]
    fn roundtrip_preserves_semantics() {
        let c = Circuit::from_gates(
            3,
            [
                Gate::H(0),
                Gate::Rz(1, 1.234_567_890_123),
                Gate::Cx(0, 2),
                Gate::U3(1, 0.1, -0.2, 0.3),
                Gate::Tdg(2),
                Gate::Swap(1, 2),
            ],
        );
        let parsed = parse_qasm(&to_qasm(&c)).unwrap();
        assert_eq!(parsed.n_qubits(), c.n_qubits());
        assert_eq!(parsed.len(), c.len());
        for (a, b) in parsed.iter().zip(c.iter()) {
            assert_eq!(a.kind(), b.kind());
            assert_eq!(a.qubits(), b.qubits());
        }
        // Angles survive at full precision.
        match (parsed.gates()[1], c.gates()[1]) {
            (Gate::Rz(_, a), Gate::Rz(_, b)) => assert!((a - b).abs() < 1e-15),
            _ => panic!("gate kind changed"),
        }
    }

    #[test]
    fn roundtrip_angles_are_bit_exact() {
        // QFT controlled phases go down to pi/2^k; the serving daemon's
        // byte-identity guarantee needs these to survive the QASM wire
        // with zero rounding, not just approximately.
        let angles: Vec<f64> = (1..=30)
            .map(|k| std::f64::consts::PI / (1u64 << k) as f64)
            .chain([-0.7, 1e-300, 3.0e5])
            .collect();
        let gates: Vec<Gate> = angles.iter().map(|&a| Gate::Rz(0, a)).collect();
        let c = Circuit::from_gates(1, gates);
        let parsed = parse_qasm(&to_qasm(&c)).unwrap();
        for (i, (p, o)) in parsed.iter().zip(c.iter()).enumerate() {
            match (p, o) {
                (Gate::Rz(_, a), Gate::Rz(_, b)) => assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "angle {i} changed: {b:?} -> {a:?}"
                ),
                _ => panic!("gate kind changed"),
            }
        }
    }

    #[test]
    fn expr_evaluator_precedence() {
        assert!((eval_expr("1+2*3").unwrap() - 7.0).abs() < 1e-15);
        assert!((eval_expr("(1+2)*3").unwrap() - 9.0).abs() < 1e-15);
        assert!((eval_expr("-pi/2").unwrap() + PI / 2.0).abs() < 1e-15);
        assert!((eval_expr("2/4").unwrap() - 0.5).abs() < 1e-15);
        assert!((eval_expr("1 - 2 - 3").unwrap() + 4.0).abs() < 1e-15);
        assert!(eval_expr("").is_err());
        assert!(eval_expr("1 2").is_err());
    }
}
