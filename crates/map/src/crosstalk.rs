//! The crosstalk metric of paper §IV-A / §VI-C.
//!
//! "We quantify the total cross-talk effect as the sum of occurrences of
//! close CNOT pairs in each layer" — qubits are dispersively coupled, so
//! interference falls off with distance and only nearby simultaneous
//! CNOTs count. Two-qubit gates at *edge distance ≤ 1* (sharing a qubit
//! is impossible within a layer, so this means adjacent pairs) form one
//! occurrence.

use accqoc_circuit::{Circuit, CircuitDag};
use accqoc_hw::Topology;

/// Edge distance at or below which two parallel two-qubit gates count as
/// a crosstalk occurrence.
pub const CLOSE_DISTANCE: usize = 1;

/// Counts close two-qubit-gate pairs per ASAP layer, summed over layers.
///
/// The circuit must already be expressed over physical qubits of
/// `topology`.
///
/// # Panics
///
/// Panics if the circuit is wider than the topology.
///
/// # Examples
///
/// ```
/// use accqoc_circuit::{Circuit, Gate};
/// use accqoc_hw::Topology;
/// use accqoc_map::crosstalk_metric;
///
/// let topo = Topology::linear(4);
/// // Two CNOTs on adjacent edges in the same layer: one occurrence.
/// let c = Circuit::from_gates(4, [Gate::Cx(0, 1), Gate::Cx(2, 3)]);
/// assert_eq!(crosstalk_metric(&c, &topo), 1);
/// ```
pub fn crosstalk_metric(circuit: &Circuit, topology: &Topology) -> usize {
    assert!(
        circuit.n_qubits() <= topology.n_qubits(),
        "circuit wider than topology"
    );
    let dag = CircuitDag::from_circuit(circuit);
    let mut total = 0usize;
    for layer in dag.layers() {
        let pairs: Vec<(usize, usize)> = layer
            .iter()
            .filter_map(|&idx| {
                let gate = &dag.node(idx).gate;
                if gate.arity() == 2 {
                    let qs = gate.qubits();
                    Some((qs[0], qs[1]))
                } else {
                    None
                }
            })
            .collect();
        for i in 0..pairs.len() {
            for j in (i + 1)..pairs.len() {
                if topology.edge_distance(pairs[i], pairs[j]) <= CLOSE_DISTANCE {
                    total += 1;
                }
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use accqoc_circuit::Gate;

    #[test]
    fn empty_circuit_scores_zero() {
        assert_eq!(crosstalk_metric(&Circuit::new(4), &Topology::linear(4)), 0);
    }

    #[test]
    fn single_gate_scores_zero() {
        let c = Circuit::from_gates(4, [Gate::Cx(0, 1)]);
        assert_eq!(crosstalk_metric(&c, &Topology::linear(4)), 0);
    }

    #[test]
    fn far_pairs_do_not_count() {
        let topo = Topology::linear(8);
        let c = Circuit::from_gates(8, [Gate::Cx(0, 1), Gate::Cx(6, 7)]);
        assert_eq!(crosstalk_metric(&c, &topo), 0);
    }

    #[test]
    fn sequential_gates_do_not_interfere() {
        // Same qubits reused ⇒ different layers ⇒ no parallel pair.
        let topo = Topology::linear(4);
        let c = Circuit::from_gates(4, [Gate::Cx(0, 1), Gate::Cx(1, 2)]);
        assert_eq!(crosstalk_metric(&c, &topo), 0);
    }

    #[test]
    fn three_adjacent_parallel_gates_count_pairwise() {
        let topo = Topology::linear(6);
        let c = Circuit::from_gates(6, [Gate::Cx(0, 1), Gate::Cx(2, 3), Gate::Cx(4, 5)]);
        // (0,1)-(2,3) close, (2,3)-(4,5) close, (0,1)-(4,5) far: 2 occurrences.
        assert_eq!(crosstalk_metric(&c, &topo), 2);
    }

    #[test]
    fn single_qubit_gates_ignored() {
        let topo = Topology::linear(4);
        let c = Circuit::from_gates(4, [Gate::H(0), Gate::Cx(2, 3), Gate::X(1)]);
        assert_eq!(crosstalk_metric(&c, &topo), 0);
    }

    #[test]
    fn melbourne_two_row_interference() {
        let topo = Topology::melbourne();
        // (1,2) and (12,2)? 12-2 is an edge; they share qubit 2 across layers…
        // use disjoint but adjacent pairs: (1,0) and (13,12)? distance(1,13)=1 via 13→1.
        let c = Circuit::from_gates(14, [Gate::Cx(1, 0), Gate::Cx(13, 12)]);
        assert_eq!(crosstalk_metric(&c, &topo), 1);
    }
}
