//! Crosstalk-aware gate scheduling.
//!
//! Mapping decides *where* gates run; scheduling decides *when*. Two
//! CNOTs only interfere when they fire in the same layer on nearby edges
//! (paper §II-F), so a scheduler that staggers close pairs removes
//! crosstalk occurrences that no mapping can — the paper calls the
//! systematic treatment an open question (§VI-C); this module implements
//! the natural greedy solution as an extension.
//!
//! The scheduler walks the dependency DAG in topological order and places
//! each gate in the earliest layer at/after its ready layer where it does
//! not land close to an already-placed two-qubit gate, deferring at most
//! `max_defer` layers before accepting the conflict (bounding the latency
//! cost).

use accqoc_circuit::{Circuit, CircuitDag, Gate};
use accqoc_hw::Topology;

use crate::crosstalk::CLOSE_DISTANCE;

/// Options for the crosstalk-aware scheduler.
#[derive(Debug, Clone)]
pub struct ScheduleOptions {
    /// Maximum layers a gate may be deferred to dodge a close pair.
    pub max_defer: usize,
}

impl Default for ScheduleOptions {
    fn default() -> Self {
        Self { max_defer: 3 }
    }
}

/// Result of scheduling: the reordered circuit plus layer bookkeeping.
#[derive(Debug, Clone)]
pub struct ScheduledCircuit {
    /// The circuit with gates reordered into the scheduled layers (a
    /// valid topological order of the original).
    pub circuit: Circuit,
    /// Scheduled layer per output-gate position.
    pub layers: Vec<usize>,
    /// Number of gates that were deferred at least one layer.
    pub deferred: usize,
    /// Depth of the schedule (layers used).
    pub depth: usize,
}

impl ScheduledCircuit {
    /// Crosstalk metric evaluated on the *scheduled* layers (close
    /// two-qubit pairs firing in the same scheduled layer). The plain
    /// [`crate::crosstalk_metric`] recomputes ASAP layers and would undo
    /// the stagger — on hardware, the schedule is what executes.
    pub fn crosstalk(&self, topology: &Topology) -> usize {
        let mut per_layer: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.depth];
        for (gate, &layer) in self.circuit.iter().zip(&self.layers) {
            if gate.arity() == 2 {
                let qs = gate.qubits();
                per_layer[layer].push((qs[0], qs[1]));
            }
        }
        let mut total = 0;
        for pairs in &per_layer {
            for i in 0..pairs.len() {
                for j in (i + 1)..pairs.len() {
                    if topology.edge_distance(pairs[i], pairs[j]) <= CLOSE_DISTANCE {
                        total += 1;
                    }
                }
            }
        }
        total
    }

    /// Latency of the schedule under per-layer costs: layers are
    /// serialized, each costing its most expensive gate.
    pub fn latency(&self, gate_cost: impl Fn(&Gate) -> f64) -> f64 {
        let mut per_layer = vec![0.0f64; self.depth];
        for (gate, &layer) in self.circuit.iter().zip(&self.layers) {
            per_layer[layer] = per_layer[layer].max(gate_cost(gate));
        }
        per_layer.iter().sum()
    }
}

/// Schedules a mapped physical circuit to minimize close parallel
/// two-qubit pairs.
///
/// Dependency-safe by construction: a gate is only ever placed at or
/// after the layer following all of its predecessors.
///
/// # Examples
///
/// ```
/// use accqoc_circuit::{Circuit, Gate};
/// use accqoc_hw::Topology;
/// use accqoc_map::{crosstalk_metric, schedule_crosstalk_aware, ScheduleOptions};
///
/// let topo = Topology::linear(4);
/// // Two adjacent CNOTs that would fire together.
/// let c = Circuit::from_gates(4, [Gate::Cx(0, 1), Gate::Cx(2, 3)]);
/// assert_eq!(crosstalk_metric(&c, &topo), 1);
/// let s = schedule_crosstalk_aware(&c, &topo, &ScheduleOptions::default());
/// assert_eq!(s.crosstalk(&topo), 0);
/// ```
pub fn schedule_crosstalk_aware(
    circuit: &Circuit,
    topology: &Topology,
    options: &ScheduleOptions,
) -> ScheduledCircuit {
    let dag = CircuitDag::from_circuit(circuit);
    let n = dag.len();
    // Two-qubit gate pairs placed per layer: layer → Vec<(a, b)>.
    let mut placed_pairs: Vec<Vec<(usize, usize)>> = Vec::new();
    // Qubit occupancy per layer (any-arity gates must not share qubits).
    let mut busy: Vec<Vec<usize>> = Vec::new();
    let mut layer_of = vec![0usize; n];

    for i in dag.topological_order() {
        let node = dag.node(i);
        let ready = node
            .preds
            .iter()
            .map(|&p| layer_of[p] + 1)
            .max()
            .unwrap_or(0);
        let qs = node.gate.qubits();
        let pair = if node.gate.arity() == 2 {
            Some((qs[0], qs[1]))
        } else {
            None
        };

        let fits = |layer: usize,
                    placed_pairs: &Vec<Vec<(usize, usize)>>,
                    busy: &Vec<Vec<usize>>|
         -> (bool, bool) {
            let free = busy
                .get(layer)
                .is_none_or(|b| qs.iter().all(|q| !b.contains(q)));
            if !free {
                return (false, false);
            }
            let close = match pair {
                Some(p) => placed_pairs.get(layer).is_some_and(|pairs| {
                    pairs
                        .iter()
                        .any(|&other| topology.edge_distance(p, other) <= CLOSE_DISTANCE)
                }),
                None => false,
            };
            (true, close)
        };

        // Earliest conflict-free layer within the defer budget; otherwise
        // the earliest qubit-free layer.
        let mut chosen: Option<usize> = None;
        let mut fallback: Option<usize> = None;
        let mut layer = ready;
        loop {
            let (free, close) = fits(layer, &placed_pairs, &busy);
            if free {
                if fallback.is_none() {
                    fallback = Some(layer);
                }
                if !close {
                    chosen = Some(layer);
                    break;
                }
            }
            if layer >= ready + options.max_defer && fallback.is_some() {
                break;
            }
            layer += 1;
            // Hard stop: beyond all existing layers everything is free.
            if layer > ready + options.max_defer + n {
                break;
            }
        }
        let layer = chosen.unwrap_or_else(|| fallback.expect("an empty layer always exists"));

        if busy.len() <= layer {
            busy.resize(layer + 1, Vec::new());
            placed_pairs.resize(layer + 1, Vec::new());
        }
        busy[layer].extend(qs.iter().copied());
        if let Some(p) = pair {
            placed_pairs[layer].push(p);
        }
        layer_of[i] = layer;
    }

    // Emit gates ordered by (layer, original index).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (layer_of[i], i));
    let mut out = Circuit::new(circuit.n_qubits());
    let mut layers = Vec::with_capacity(n);
    let mut deferred = 0usize;
    for &i in &order {
        out.push(dag.node(i).gate);
        layers.push(layer_of[i]);
        let ready = dag
            .node(i)
            .preds
            .iter()
            .map(|&p| layer_of[p] + 1)
            .max()
            .unwrap_or(0);
        if layer_of[i] > ready {
            deferred += 1;
        }
    }
    let depth = layer_of.iter().copied().max().map_or(0, |d| d + 1);
    ScheduledCircuit {
        circuit: out,
        layers,
        deferred,
        depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crosstalk::crosstalk_metric;
    use accqoc_circuit::circuit_unitary;
    use accqoc_linalg::approx_eq_up_to_phase;

    #[test]
    fn staggers_adjacent_parallel_cnots() {
        let topo = Topology::linear(6);
        let c = Circuit::from_gates(6, [Gate::Cx(0, 1), Gate::Cx(2, 3), Gate::Cx(4, 5)]);
        assert_eq!(crosstalk_metric(&c, &topo), 2);
        let s = schedule_crosstalk_aware(&c, &topo, &ScheduleOptions::default());
        assert_eq!(s.crosstalk(&topo), 0);
        assert!(s.deferred >= 1);
        assert!(s.depth >= 2);
    }

    #[test]
    fn far_gates_stay_parallel() {
        let topo = Topology::linear(8);
        let c = Circuit::from_gates(8, [Gate::Cx(0, 1), Gate::Cx(6, 7)]);
        let s = schedule_crosstalk_aware(&c, &topo, &ScheduleOptions::default());
        assert_eq!(s.deferred, 0);
        assert_eq!(s.depth, 1);
    }

    #[test]
    fn preserves_semantics() {
        let topo = Topology::linear(4);
        let c = Circuit::from_gates(
            4,
            [
                Gate::H(0),
                Gate::Cx(0, 1),
                Gate::Cx(2, 3),
                Gate::T(1),
                Gate::Cx(1, 2),
                Gate::Cx(0, 1),
            ],
        );
        let s = schedule_crosstalk_aware(&c, &topo, &ScheduleOptions::default());
        assert_eq!(s.circuit.len(), c.len());
        let u1 = circuit_unitary(&c);
        let u2 = circuit_unitary(&s.circuit);
        assert!(
            approx_eq_up_to_phase(&u1, &u2, 1e-10),
            "scheduling changed semantics"
        );
    }

    #[test]
    fn defer_budget_bounds_latency_growth() {
        let topo = Topology::linear(6);
        // Heavy contention: many parallel close CNOTs.
        let mut gates = Vec::new();
        for _ in 0..4 {
            gates.push(Gate::Cx(0, 1));
            gates.push(Gate::Cx(2, 3));
            gates.push(Gate::Cx(4, 5));
        }
        let c = Circuit::from_gates(6, gates);
        let tight = schedule_crosstalk_aware(&c, &topo, &ScheduleOptions { max_defer: 0 });
        let loose = schedule_crosstalk_aware(&c, &topo, &ScheduleOptions { max_defer: 4 });
        assert!(tight.depth <= loose.depth);
        assert!(loose.crosstalk(&topo) <= tight.crosstalk(&topo));
        // Latency model: staggering costs layers.
        let unit = |_: &Gate| 1.0;
        assert!(loose.latency(unit) >= tight.latency(unit) - 1e-12);
    }

    #[test]
    fn single_qubit_gates_never_deferred_for_crosstalk() {
        let topo = Topology::linear(4);
        let c = Circuit::from_gates(4, [Gate::Cx(0, 1), Gate::H(2), Gate::T(3)]);
        let s = schedule_crosstalk_aware(&c, &topo, &ScheduleOptions::default());
        assert_eq!(s.deferred, 0);
        assert_eq!(s.depth, 1);
    }

    #[test]
    fn empty_circuit() {
        let topo = Topology::linear(2);
        let s = schedule_crosstalk_aware(&Circuit::new(2), &topo, &ScheduleOptions::default());
        assert_eq!(s.depth, 0);
        assert!(s.circuit.is_empty());
    }
}
