//! Crosstalk-aware qubit mapping for the AccQOC reproduction.
//!
//! Implements the paper's §IV-A mapping pass: an A*-searched swap
//! insertion in the style of Zulehner, Paler & Wille, with the heuristic
//! extended by a crosstalk indicator that penalizes mappings placing
//! simultaneous CNOTs on nearby device edges. Also provides the §VI-C
//! crosstalk metric (close CNOT pairs per layer) used in Figure 11.
//!
//! # Example
//!
//! ```
//! use accqoc_circuit::{Circuit, Gate};
//! use accqoc_hw::Topology;
//! use accqoc_map::{crosstalk_metric, map_circuit, MappingOptions};
//!
//! let topo = Topology::melbourne();
//! let c = Circuit::from_gates(14, [Gate::Cx(0, 4), Gate::Cx(5, 9)]);
//! let mapped = map_circuit(&c, &topo, &MappingOptions::default());
//! let _ = crosstalk_metric(&mapped.circuit, &topo);
//! ```

#![warn(missing_docs)]

mod crosstalk;
mod mapper;
mod schedule;

pub use crosstalk::{crosstalk_metric, CLOSE_DISTANCE};
pub use mapper::{asap_layers, front_layers, map_circuit, MappedCircuit, MappingOptions};
pub use schedule::{schedule_crosstalk_aware, ScheduleOptions, ScheduledCircuit};
