//! Crosstalk-aware qubit mapping via A* search with swap insertion.
//!
//! Follows the structure of Zulehner, Paler & Wille's mapper (the tool the
//! paper adopts, §IV-A): the circuit is cut into layers of concurrently
//! executable gates, and for each layer an A* search over swap insertions
//! finds a mapping under which every two-qubit gate touches adjacent
//! physical qubits. AccQOC's extension adds a crosstalk term to the
//! heuristic:
//!
//! ```text
//! h(σ) = Σ_g h(g, σ) + Σ_{gm,gn} I(gm, gn)
//! ```
//!
//! where `h(g, σ)` is the residual distance of gate `g`'s qubits and the
//! indicator `I` fires when two of the layer's gates land too close on
//! the device (edge distance ≤ 1).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use accqoc_circuit::{Circuit, CircuitDag, Gate};
use accqoc_hw::Topology;

use crate::crosstalk::CLOSE_DISTANCE;

/// Mapping configuration.
#[derive(Debug, Clone)]
pub struct MappingOptions {
    /// Include the crosstalk indicator term in the search cost.
    pub crosstalk_aware: bool,
    /// Weight of one close-pair occurrence relative to one swap.
    pub crosstalk_weight: f64,
    /// A* node-expansion cap before falling back to greedy descent.
    pub max_nodes: usize,
}

impl Default for MappingOptions {
    fn default() -> Self {
        Self {
            crosstalk_aware: true,
            crosstalk_weight: 2.0,
            max_nodes: 20_000,
        }
    }
}

/// Output of the mapping pass.
#[derive(Debug, Clone)]
pub struct MappedCircuit {
    /// The physical circuit: swaps inserted, CNOT directions legalized.
    pub circuit: Circuit,
    /// Initial layout, `layout[logical] = physical`.
    pub initial_layout: Vec<usize>,
    /// Layout after the last layer.
    pub final_layout: Vec<usize>,
    /// Number of swap gates inserted.
    pub swap_count: usize,
    /// Number of CNOTs that needed H-conjugation to match the directed
    /// coupling map.
    pub direction_fixes: usize,
}

/// Maps a logical circuit onto a device topology.
///
/// # Panics
///
/// Panics if the circuit needs more qubits than the device has, or if a
/// gate of arity ≥ 3 is present (decompose `ccx` first).
///
/// # Examples
///
/// ```
/// use accqoc_circuit::{Circuit, Gate};
/// use accqoc_hw::Topology;
/// use accqoc_map::{map_circuit, MappingOptions};
///
/// let topo = Topology::linear(4);
/// // cx(0,3) is 3 hops away: swaps must be inserted.
/// let c = Circuit::from_gates(4, [Gate::Cx(0, 3)]);
/// let mapped = map_circuit(&c, &topo, &MappingOptions::default());
/// assert!(mapped.swap_count >= 2);
/// ```
pub fn map_circuit(
    circuit: &Circuit,
    topology: &Topology,
    options: &MappingOptions,
) -> MappedCircuit {
    let n_logical = circuit.n_qubits();
    let n_physical = topology.n_qubits();
    assert!(
        n_logical <= n_physical,
        "{n_logical} logical qubits on {n_physical} physical"
    );

    let mut layout: Vec<usize> = (0..n_logical).collect();
    let mut out = Circuit::new(n_physical);
    let initial_layout = layout.clone();
    let mut swap_count = 0usize;
    let mut direction_fixes = 0usize;

    for layer in asap_layers(circuit) {
        let two_qubit: Vec<(usize, usize)> = layer
            .iter()
            .filter(|g| g.arity() == 2)
            .map(|g| {
                let qs = g.qubits();
                (qs[0], qs[1])
            })
            .collect();
        assert!(
            layer.iter().all(|g| g.arity() <= 2),
            "decompose 3-qubit gates before mapping"
        );

        if !two_qubit.is_empty() {
            let swaps = plan_swaps(&layout, &two_qubit, topology, options);
            for (pa, pb) in swaps {
                out.push(Gate::Swap(pa, pb));
                swap_count += 1;
                // Update layout: the logicals on pa/pb exchange homes.
                for slot in layout.iter_mut() {
                    if *slot == pa {
                        *slot = pb;
                    } else if *slot == pb {
                        *slot = pa;
                    }
                }
            }
        }

        for gate in &layer {
            match *gate {
                Gate::Cx(c, t) => {
                    let (pc, pt) = (layout[c], layout[t]);
                    if topology.cx_allowed(pc, pt) {
                        out.push(Gate::Cx(pc, pt));
                    } else if topology.cx_allowed(pt, pc) {
                        // Reverse through H conjugation (4 extra gates).
                        out.push(Gate::H(pc));
                        out.push(Gate::H(pt));
                        out.push(Gate::Cx(pt, pc));
                        out.push(Gate::H(pc));
                        out.push(Gate::H(pt));
                        direction_fixes += 1;
                    } else {
                        unreachable!("swap planning left cx({pc},{pt}) non-adjacent");
                    }
                }
                ref g => out.push(g.remap(|q| layout[q])),
            }
        }
    }

    MappedCircuit {
        circuit: out,
        initial_layout,
        final_layout: layout,
        swap_count,
        direction_fixes,
    }
}

/// ASAP layer partition via the circuit DAG: gates in one layer have
/// disjoint qubits and all dependencies in earlier layers. These are the
/// layers that actually execute concurrently, so they are what the
/// crosstalk indicator must see (two gates only interfere when they fire
/// at the same time).
pub fn asap_layers(circuit: &Circuit) -> Vec<Vec<Gate>> {
    let dag = CircuitDag::from_circuit(circuit);
    dag.layers()
        .into_iter()
        .map(|idxs| idxs.into_iter().map(|i| dag.node(i).gate).collect())
        .collect()
}

/// Greedy front-layer partition: a gate joins the current layer unless one
/// of its qubits is already busy there.
pub fn front_layers(circuit: &Circuit) -> Vec<Vec<Gate>> {
    let mut layers: Vec<Vec<Gate>> = Vec::new();
    let mut busy: Vec<bool> = vec![false; circuit.n_qubits()];
    let mut current: Vec<Gate> = Vec::new();
    for &gate in circuit.gates() {
        let qs = gate.qubits();
        if qs.iter().any(|&q| busy[q]) {
            layers.push(std::mem::take(&mut current));
            busy.iter_mut().for_each(|b| *b = false);
        }
        for &q in &qs {
            busy[q] = true;
        }
        current.push(gate);
    }
    if !current.is_empty() {
        layers.push(current);
    }
    layers
}

// ---------------------------------------------------------------------------
// A* over swap insertions for one layer.
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct Node {
    layout: Vec<usize>,
    swaps: Vec<(usize, usize)>,
    g: f64,
    f: f64,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.f == other.f
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on f (BinaryHeap is a max-heap).
        other.f.total_cmp(&self.f)
    }
}

fn distance_cost(layout: &[usize], gates: &[(usize, usize)], topology: &Topology) -> usize {
    gates
        .iter()
        .map(|&(a, b)| topology.distance(layout[a], layout[b]).saturating_sub(1))
        .sum()
}

fn crosstalk_cost(layout: &[usize], gates: &[(usize, usize)], topology: &Topology) -> usize {
    let mut count = 0;
    for i in 0..gates.len() {
        for j in (i + 1)..gates.len() {
            let pi = (layout[gates[i].0], layout[gates[i].1]);
            let pj = (layout[gates[j].0], layout[gates[j].1]);
            if topology.edge_distance(pi, pj) <= CLOSE_DISTANCE {
                count += 1;
            }
        }
    }
    count
}

fn heuristic(
    layout: &[usize],
    gates: &[(usize, usize)],
    topology: &Topology,
    options: &MappingOptions,
) -> f64 {
    let dist = distance_cost(layout, gates, topology) as f64;
    if options.crosstalk_aware {
        dist + options.crosstalk_weight * crosstalk_cost(layout, gates, topology) as f64
    } else {
        dist
    }
}

/// Plans a swap sequence making every gate of the layer adjacent.
fn plan_swaps(
    layout: &[usize],
    gates: &[(usize, usize)],
    topology: &Topology,
    options: &MappingOptions,
) -> Vec<(usize, usize)> {
    if distance_cost(layout, gates, topology) == 0
        && (!options.crosstalk_aware || crosstalk_cost(layout, gates, topology) == 0)
    {
        return Vec::new();
    }
    // Physical qubits whose movement can matter: those hosting layer
    // logicals and their neighbors' frontier grows during search, so we
    // allow swaps on any edge touching a currently relevant qubit.
    let mut heap = BinaryHeap::new();
    let mut seen: HashMap<Vec<usize>, f64> = HashMap::new();
    let h0 = heuristic(layout, gates, topology, options);
    heap.push(Node {
        layout: layout.to_vec(),
        swaps: Vec::new(),
        g: 0.0,
        f: h0,
    });
    seen.insert(layout.to_vec(), 0.0);

    let mut expanded = 0usize;
    let mut best_goal: Option<Node> = None;

    while let Some(node) = heap.pop() {
        if distance_cost(&node.layout, gates, topology) == 0 {
            best_goal = Some(node);
            break;
        }
        expanded += 1;
        if expanded > options.max_nodes {
            break;
        }
        let active: Vec<usize> = gates
            .iter()
            .flat_map(|&(a, b)| [node.layout[a], node.layout[b]])
            .collect();
        for &(ea, eb) in &topology.undirected_edges() {
            if !active.contains(&ea) && !active.contains(&eb) {
                continue;
            }
            let mut next_layout = node.layout.clone();
            for slot in next_layout.iter_mut() {
                if *slot == ea {
                    *slot = eb;
                } else if *slot == eb {
                    *slot = ea;
                }
            }
            let g = node.g + 1.0;
            if let Some(&prev) = seen.get(&next_layout) {
                if prev <= g {
                    continue;
                }
            }
            seen.insert(next_layout.clone(), g);
            let h = heuristic(&next_layout, gates, topology, options);
            let mut swaps = node.swaps.clone();
            swaps.push((ea, eb));
            heap.push(Node {
                layout: next_layout,
                swaps,
                g,
                f: g + h,
            });
        }
    }

    if let Some(goal) = best_goal {
        return goal.swaps;
    }
    greedy_swaps(layout, gates, topology, options)
}

/// Fallback when A* exceeds its node budget: repeatedly apply the swap
/// that lowers the heuristic most.
fn greedy_swaps(
    layout: &[usize],
    gates: &[(usize, usize)],
    topology: &Topology,
    options: &MappingOptions,
) -> Vec<(usize, usize)> {
    let mut layout = layout.to_vec();
    let mut swaps = Vec::new();
    for _ in 0..4 * topology.n_qubits() {
        if distance_cost(&layout, gates, topology) == 0 {
            return swaps;
        }
        let current = heuristic(&layout, gates, topology, options);
        let mut best: Option<((usize, usize), f64)> = None;
        for &(ea, eb) in &topology.undirected_edges() {
            let mut trial = layout.clone();
            for slot in trial.iter_mut() {
                if *slot == ea {
                    *slot = eb;
                } else if *slot == eb {
                    *slot = ea;
                }
            }
            let h = heuristic(&trial, gates, topology, options);
            if h < current && best.is_none_or(|(_, bh)| h < bh) {
                best = Some(((ea, eb), h));
            }
        }
        match best {
            Some((edge, _)) => {
                for slot in layout.iter_mut() {
                    if *slot == edge.0 {
                        *slot = edge.1;
                    } else if *slot == edge.1 {
                        *slot = edge.0;
                    }
                }
                swaps.push(edge);
            }
            // Plateau: take any distance-reducing swap ignoring crosstalk.
            None => {
                let no_xtalk = MappingOptions {
                    crosstalk_aware: false,
                    ..options.clone()
                };
                let cur_d = distance_cost(&layout, gates, topology) as f64;
                let mut found = false;
                for &(ea, eb) in &topology.undirected_edges() {
                    let mut trial = layout.clone();
                    for slot in trial.iter_mut() {
                        if *slot == ea {
                            *slot = eb;
                        } else if *slot == eb {
                            *slot = ea;
                        }
                    }
                    if heuristic(&trial, gates, topology, &no_xtalk) < cur_d {
                        layout = trial;
                        swaps.push((ea, eb));
                        found = true;
                        break;
                    }
                }
                assert!(found, "no distance-reducing swap on a connected topology");
            }
        }
    }
    swaps
}

#[cfg(test)]
mod tests {
    use super::*;
    use accqoc_circuit::{circuit_unitary, CircuitDag};

    #[test]
    fn already_mapped_circuit_unchanged() {
        let topo = Topology::linear(3);
        let c = Circuit::from_gates(3, [Gate::H(0), Gate::Cx(0, 1), Gate::Cx(1, 2)]);
        let m = map_circuit(&c, &topo, &MappingOptions::default());
        assert_eq!(m.swap_count, 0);
        assert_eq!(m.circuit.len(), 3);
        assert_eq!(m.initial_layout, vec![0, 1, 2]);
    }

    #[test]
    fn distant_cx_gets_swaps_and_stays_correct() {
        let topo = Topology::linear(4);
        let c = Circuit::from_gates(4, [Gate::Cx(0, 3)]);
        let m = map_circuit(&c, &topo, &MappingOptions::default());
        assert!(
            m.swap_count >= 2,
            "need ≥2 swaps for distance 3, got {}",
            m.swap_count
        );
        // Every 2-qubit gate in the output is adjacent.
        for g in m.circuit.iter() {
            if g.arity() == 2 {
                let qs = g.qubits();
                assert!(topo.connected(qs[0], qs[1]), "{g:?} not adjacent");
            }
        }
    }

    #[test]
    fn mapped_circuit_is_functionally_equivalent_small() {
        // Verify unitary equivalence on a 3-qubit line after accounting for
        // the final layout (swaps permute the logical→physical assignment).
        let topo = Topology::linear(3);
        let c = Circuit::from_gates(3, [Gate::H(0), Gate::Cx(0, 2), Gate::T(2), Gate::Cx(1, 2)]);
        let m = map_circuit(
            &c,
            &topo,
            &MappingOptions {
                crosstalk_aware: false,
                ..Default::default()
            },
        );

        // Simulate: logical result with qubit i at physical initial_layout[i];
        // the mapped circuit computes the same state up to the final layout
        // permutation. Check unitary equivalence by undoing the layout change
        // with explicit swaps appended to the mapped circuit.
        let mut physical = m.circuit.clone();
        let mut layout = m.final_layout.clone();
        // Sort logicals back to initial positions with adjacent swaps.
        for target in 0..3 {
            let want = m.initial_layout[target];
            let cur = layout[target];
            if cur != want {
                // On a 3-line all permutations can be fixed with ≤ 3 adjacent swaps.
                let path: Vec<usize> = if cur < want {
                    (cur..=want).collect()
                } else {
                    (want..=cur).rev().collect()
                };
                for w in path.windows(2) {
                    physical.push(Gate::Swap(w[0], w[1]));
                    for slot in layout.iter_mut() {
                        if *slot == w[0] {
                            *slot = w[1];
                        } else if *slot == w[1] {
                            *slot = w[0];
                        }
                    }
                }
            }
        }
        assert_eq!(layout, m.initial_layout);
        let u_logical = circuit_unitary(&c);
        let u_physical = circuit_unitary(&physical);
        assert!(
            accqoc_linalg_approx(&u_logical, &u_physical),
            "mapped circuit diverged from original"
        );
    }

    fn accqoc_linalg_approx(a: &accqoc_linalg::Mat, b: &accqoc_linalg::Mat) -> bool {
        accqoc_linalg::approx_eq_up_to_phase(a, b, 1e-9)
    }

    #[test]
    fn direction_fix_on_melbourne() {
        let topo = Topology::melbourne();
        // Edge is 1→0; requesting 0→1 forces H conjugation.
        let c = Circuit::from_gates(14, [Gate::Cx(0, 1)]);
        let m = map_circuit(&c, &topo, &MappingOptions::default());
        assert_eq!(m.direction_fixes, 1);
        assert_eq!(m.swap_count, 0);
        let h_count = m.circuit.iter().filter(|g| matches!(g, Gate::H(_))).count();
        assert_eq!(h_count, 4);
    }

    #[test]
    fn front_layers_respect_qubit_conflicts() {
        let c = Circuit::from_gates(4, [Gate::H(0), Gate::H(1), Gate::Cx(0, 1), Gate::Cx(2, 3)]);
        let layers = front_layers(&c);
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0].len(), 2);
        assert_eq!(layers[1].len(), 2);
    }

    #[test]
    fn crosstalk_aware_mapping_no_worse_crosstalk() {
        use crate::crosstalk::crosstalk_metric;
        let topo = Topology::melbourne();
        // Parallel CNOT pressure: several 2-qubit gates in the same layers.
        let c = Circuit::from_gates(
            14,
            [
                Gate::Cx(0, 1),
                Gate::Cx(2, 3),
                Gate::Cx(9, 10),
                Gate::Cx(5, 6),
                Gate::Cx(1, 2),
                Gate::Cx(11, 12),
            ],
        );
        let plain = map_circuit(
            &c,
            &topo,
            &MappingOptions {
                crosstalk_aware: false,
                ..Default::default()
            },
        );
        let aware = map_circuit(&c, &topo, &MappingOptions::default());
        let xt_plain = crosstalk_metric(&plain.circuit, &topo);
        let xt_aware = crosstalk_metric(&aware.circuit, &topo);
        assert!(
            xt_aware <= xt_plain,
            "crosstalk-aware made things worse: {xt_aware} vs {xt_plain}"
        );
    }

    #[test]
    fn all_two_qubit_gates_adjacent_after_mapping_melbourne() {
        let topo = Topology::melbourne();
        // A QFT-like all-to-all pattern on 6 logical qubits.
        let mut c = Circuit::new(6);
        for i in 0..6 {
            c.push(Gate::H(i));
            for j in (i + 1)..6 {
                c.push(Gate::Cx(i, j));
            }
        }
        let m = map_circuit(&c, &topo, &MappingOptions::default());
        for g in m.circuit.iter() {
            if g.arity() == 2 {
                let qs = g.qubits();
                assert!(topo.connected(qs[0], qs[1]), "{g:?} not adjacent");
            }
            if let Gate::Cx(a, b) = g {
                assert!(topo.cx_allowed(*a, *b), "cx({a},{b}) direction illegal");
            }
        }
        // DAG still builds (no structural corruption).
        let dag = CircuitDag::from_circuit(&m.circuit);
        assert_eq!(dag.len(), m.circuit.len());
    }

    #[test]
    #[should_panic(expected = "logical qubits on")]
    fn too_many_logical_qubits_rejected() {
        let topo = Topology::linear(2);
        let c = Circuit::new(3);
        let _ = map_circuit(&c, &topo, &MappingOptions::default());
    }
}
