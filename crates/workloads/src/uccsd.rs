//! Parameterized UCCSD-style ansatz slices over a θ-grid.
//!
//! The epiqc PartialCompilation workflow compiles a Trotterized UCCSD
//! ansatz slice by slice, handing each slice's unitary to the optimal
//! control solver — and then re-solves as the variational loop sweeps
//! the parameters θ. That traffic pattern is the killer app for
//! similarity-seeded compilation: adjacent parameter values produce
//! *nearly identical* unitaries, so a pulse library that warm-starts
//! from fingerprint neighbors amortizes almost the entire GRAPE cost
//! across the sweep.
//!
//! This module generates that family deterministically. A *slice* is one
//! Jordan–Wigner single-excitation term `exp(θ (a†_q a_{q+1} − h.c.))`
//! on an adjacent qubit pair, Trotterized as the two Pauli-string
//! evolutions `exp(∓iθ/2 · XY)` / `exp(±iθ/2 · YX)` — CNOT ladders
//! around an `rz`, with `h`/`rx(±π/2)` basis changes on the ends (the
//! same gate texture as [`crate::gse`], which is what the grouping
//! pipeline sees). A *family* instantiates an ansatz of several slices
//! at every point of a θ-grid; neighboring grid points yield unitaries
//! inside the serving tier's warm-start gate, so replaying the family as
//! an arrival stream stresses exactly the fingerprint-index → warm-GRAPE
//! path.

use accqoc_circuit::{Circuit, Gate};

use crate::suite::BenchProgram;

/// Low end of the canonical θ-grid range.
pub const THETA_MIN: f64 = 0.15;

/// High end of the canonical θ-grid range.
pub const THETA_MAX: f64 = 0.79;

/// Points in [`default_theta_grid`]. With the canonical range this pins
/// the default spacing to exactly 0.08 — far above the unitary-key
/// quantization (adjacent points stay *distinct* groups) and far below
/// the warm-start distance gate (adjacent points stay *warm-startable*).
pub const DEFAULT_GRID_POINTS: usize = 9;

/// Per-slice offset added to the grid θ, so an ansatz's slices are
/// distinct canonical unitaries (not permutation-equivalent copies) yet
/// still close enough to warm-start from one another.
pub const SLICE_ANGLE_STEP: f64 = 0.2;

/// Evenly spaced θ-grid over `[THETA_MIN, THETA_MAX]`, endpoints
/// included.
///
/// # Panics
///
/// Panics if `points < 2`.
///
/// # Examples
///
/// ```
/// let grid = accqoc_workloads::theta_grid(9);
/// assert_eq!(grid.len(), 9);
/// assert!((grid[1] - grid[0] - 0.08).abs() < 1e-12);
/// ```
pub fn theta_grid(points: usize) -> Vec<f64> {
    assert!(points >= 2, "a theta grid needs at least two points");
    let step = (THETA_MAX - THETA_MIN) / (points - 1) as f64;
    (0..points).map(|t| THETA_MIN + step * t as f64).collect()
}

/// The default θ-grid: [`DEFAULT_GRID_POINTS`] evenly spaced points.
pub fn default_theta_grid() -> Vec<f64> {
    theta_grid(DEFAULT_GRID_POINTS)
}

/// One Trotterized UCCSD single-excitation slice at angle `theta`: the
/// excitation acts on the adjacent pair `(q, q+1)` with
/// `q = slice % (n-1)`, implemented as the two Pauli-string evolutions
/// `exp(-iθ/2·X_q Y_{q+1})` and `exp(+iθ/2·Y_q X_{q+1})`.
///
/// # Panics
///
/// Panics if `n < 2` or `theta` is not finite.
///
/// # Examples
///
/// ```
/// use accqoc_workloads::uccsd_slice;
///
/// let c = uccsd_slice(4, 1, 0.3);
/// assert_eq!(c.n_qubits(), 4);
/// assert_eq!(c.len(), 14);
/// ```
pub fn uccsd_slice(n: usize, slice: usize, theta: f64) -> Circuit {
    assert!(n >= 2, "uccsd needs at least two qubits");
    assert!(theta.is_finite(), "uccsd angle must be finite");
    let q = slice % (n - 1);
    let half_pi = std::f64::consts::FRAC_PI_2;
    let mut c = Circuit::new(n);
    // exp(-iθ/2 · X_q Y_{q+1}): h / rx(π/2) into the Z basis, CNOT
    // ladder around the rz, undo.
    c.push(Gate::H(q));
    c.push(Gate::Rx(q + 1, half_pi));
    c.push(Gate::Cx(q, q + 1));
    c.push(Gate::Rz(q + 1, theta));
    c.push(Gate::Cx(q, q + 1));
    c.push(Gate::H(q));
    c.push(Gate::Rx(q + 1, -half_pi));
    // exp(+iθ/2 · Y_q X_{q+1}): bases swapped, angle negated.
    c.push(Gate::Rx(q, half_pi));
    c.push(Gate::H(q + 1));
    c.push(Gate::Cx(q, q + 1));
    c.push(Gate::Rz(q + 1, -theta));
    c.push(Gate::Cx(q, q + 1));
    c.push(Gate::Rx(q, -half_pi));
    c.push(Gate::H(q + 1));
    c
}

/// The parameterized workload family: one [`BenchProgram`] per θ-grid
/// point, each an ansatz of `slices` excitation slices. Slice `k` of the
/// program at grid value `θ` uses angle `θ + k·SLICE_ANGLE_STEP` and
/// walks the excitation pair around the register, so programs at
/// adjacent grid points differ by the same small rotation in every
/// slice — the regime where fingerprint warm starts should rescue
/// almost every compile.
///
/// Program names follow `uccsd_{n}_{slices}_t{index}` (grid order).
///
/// # Panics
///
/// Panics if `n < 2`, `slices == 0`, or `theta_grid` is empty or
/// contains a non-finite value.
///
/// # Examples
///
/// ```
/// use accqoc_workloads::{default_theta_grid, uccsd_family};
///
/// let family = uccsd_family(4, 3, &default_theta_grid());
/// assert_eq!(family.len(), 9);
/// assert_eq!(family[0].name, "uccsd_4_3_t0");
/// assert!(family.iter().all(|p| p.circuit.n_qubits() == 4));
/// ```
pub fn uccsd_family(n: usize, slices: usize, theta_grid: &[f64]) -> Vec<BenchProgram> {
    assert!(n >= 2, "uccsd needs at least two qubits");
    assert!(slices >= 1, "uccsd ansatz needs at least one slice");
    assert!(!theta_grid.is_empty(), "theta grid must be non-empty");
    theta_grid
        .iter()
        .enumerate()
        .map(|(t, &theta)| {
            assert!(theta.is_finite(), "theta grid value {t} is not finite");
            let mut circuit = Circuit::new(n);
            for k in 0..slices {
                circuit.append(&uccsd_slice(n, k, theta + SLICE_ANGLE_STEP * k as f64));
            }
            BenchProgram {
                name: format!("uccsd_{n}_{slices}_t{t}"),
                circuit,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use accqoc_circuit::{circuit_unitary, GateKind, UnitaryKey};

    #[test]
    fn slice_gate_budget_and_pair_walk() {
        let c = uccsd_slice(4, 0, 0.3);
        let counts = c.counts_by_kind();
        assert_eq!(counts[&GateKind::Cx], 4);
        assert_eq!(counts[&GateKind::Rz], 2);
        assert_eq!(counts[&GateKind::H], 4);
        assert_eq!(counts[&GateKind::Rx], 4);
        // The excitation pair cycles with the slice index.
        assert_eq!(uccsd_slice(4, 0, 0.3).used_qubits(), vec![0, 1]);
        assert_eq!(uccsd_slice(4, 1, 0.3).used_qubits(), vec![1, 2]);
        assert_eq!(uccsd_slice(4, 3, 0.3).used_qubits(), vec![0, 1]);
    }

    #[test]
    fn slice_is_unitary() {
        let u = circuit_unitary(&uccsd_slice(3, 0, 0.47));
        assert!(u.is_unitary(1e-11));
    }

    #[test]
    fn family_is_deterministic_with_unique_names() {
        let grid = default_theta_grid();
        let a = uccsd_family(4, 3, &grid);
        let b = uccsd_family(4, 3, &grid);
        assert_eq!(a.len(), grid.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.circuit, y.circuit);
        }
        let mut names: Vec<&str> = a.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), grid.len());
    }

    #[test]
    fn adjacent_grid_points_are_distinct_unitaries() {
        // The grid spacing must clear the unitary-key quantization:
        // neighboring programs are *new* groups (warm misses), not exact
        // hits of each other.
        let family = uccsd_family(3, 1, &default_theta_grid());
        let keys: Vec<UnitaryKey> = family
            .iter()
            .map(|p| UnitaryKey::canonical(&circuit_unitary(&p.circuit), 3))
            .collect();
        for w in keys.windows(2) {
            assert_ne!(w[0], w[1], "adjacent grid points collided");
        }
    }

    #[test]
    fn grid_is_evenly_spaced_and_in_range() {
        let grid = theta_grid(5);
        assert_eq!(grid.len(), 5);
        assert!((grid[0] - THETA_MIN).abs() < 1e-12);
        assert!((grid[4] - THETA_MAX).abs() < 1e-12);
        let step = grid[1] - grid[0];
        for w in grid.windows(2) {
            assert!((w[1] - w[0] - step).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least two qubits")]
    fn single_qubit_rejected() {
        let _ = uccsd_slice(1, 0, 0.3);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn degenerate_grid_rejected() {
        let _ = theta_grid(1);
    }
}
