//! RevLib-style reversible-function benchmarks.
//!
//! The paper's suite comes from RevLib [41]: reversible functions
//! synthesized over the NCT library (NOT / CNOT / Toffoli). The original
//! netlists are not shipped here, so we generate deterministic synthetic
//! equivalents: seeded NCT networks with the *same line counts and gate
//! budgets* as the named originals. After Toffoli decomposition these
//! reproduce the instruction mixes of paper Table II (each `ccx`
//! contributes `2 h + 4 t + 3 tdg + 6 cx`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use accqoc_circuit::{Circuit, Gate};

/// Specification of a synthetic NCT benchmark.
#[derive(Debug, Clone)]
pub struct NctSpec {
    /// Benchmark name (RevLib convention, e.g. `"cm152a_212"`).
    pub name: &'static str,
    /// Circuit lines (qubits).
    pub lines: usize,
    /// Number of Toffoli gates.
    pub n_ccx: usize,
    /// Number of plain CNOTs.
    pub n_cx: usize,
    /// Number of NOT gates.
    pub n_x: usize,
    /// Generator seed (fixed per benchmark for reproducibility).
    pub seed: u64,
}

/// The named benchmarks of paper Table II, with gate budgets reverse-
/// engineered from the reported instruction mixes (`t = 4·ccx`,
/// `tdg = 3·ccx`, `h = 2·ccx`, `cx = 6·ccx + extra`).
pub fn paper_specs() -> Vec<NctSpec> {
    vec![
        NctSpec {
            name: "4gt4-v0_79",
            lines: 5,
            n_ccx: 14,
            n_cx: 21,
            n_x: 0,
            seed: 79,
        },
        NctSpec {
            name: "cm152a_212",
            lines: 12,
            n_ccx: 76,
            n_cx: 76,
            n_x: 5,
            seed: 212,
        },
        NctSpec {
            name: "ex2_227",
            lines: 7,
            n_ccx: 39,
            n_cx: 41,
            n_x: 5,
            seed: 227,
        },
        NctSpec {
            name: "f2_232",
            lines: 8,
            n_ccx: 75,
            n_cx: 75,
            n_x: 6,
            seed: 232,
        },
    ]
}

/// A broader catalogue of RevLib-like names used to populate the
/// 159-program suite (encoding, arithmetic, symmetric, misc functions).
pub fn extended_specs() -> Vec<NctSpec> {
    vec![
        NctSpec {
            name: "alu-v0_27",
            lines: 5,
            n_ccx: 6,
            n_cx: 11,
            n_x: 0,
            seed: 27,
        },
        NctSpec {
            name: "rd53_135",
            lines: 7,
            n_ccx: 16,
            n_cx: 28,
            n_x: 0,
            seed: 135,
        },
        NctSpec {
            name: "sym6_145",
            lines: 7,
            n_ccx: 56,
            n_cx: 70,
            n_x: 0,
            seed: 145,
        },
        NctSpec {
            name: "hwb5_53",
            lines: 5,
            n_ccx: 27,
            n_cx: 54,
            n_x: 2,
            seed: 53,
        },
        NctSpec {
            name: "mod5adder_127",
            lines: 6,
            n_ccx: 32,
            n_cx: 39,
            n_x: 2,
            seed: 127,
        },
        NctSpec {
            name: "decod24-v2_43",
            lines: 4,
            n_ccx: 8,
            n_cx: 14,
            n_x: 1,
            seed: 43,
        },
        NctSpec {
            name: "one-two-three-v0_97",
            lines: 5,
            n_ccx: 12,
            n_cx: 16,
            n_x: 2,
            seed: 97,
        },
        NctSpec {
            name: "4mod5-v1_22",
            lines: 5,
            n_ccx: 5,
            n_cx: 9,
            n_x: 1,
            seed: 22,
        },
        NctSpec {
            name: "mini-alu_167",
            lines: 5,
            n_ccx: 18,
            n_cx: 26,
            n_x: 0,
            seed: 167,
        },
        NctSpec {
            name: "ham7_104",
            lines: 7,
            n_ccx: 23,
            n_cx: 46,
            n_x: 1,
            seed: 104,
        },
        NctSpec {
            name: "cnt3-5_179",
            lines: 16,
            n_ccx: 20,
            n_cx: 45,
            n_x: 0,
            seed: 179,
        },
        NctSpec {
            name: "majority_239",
            lines: 7,
            n_ccx: 40,
            n_cx: 52,
            n_x: 3,
            seed: 239,
        },
    ]
}

/// Generates the synthetic NCT circuit of a spec (Toffolis *not* yet
/// decomposed — callers decide per policy).
///
/// # Panics
///
/// Panics if the spec has fewer than 3 lines but requests Toffolis.
///
/// # Examples
///
/// ```
/// use accqoc_workloads::{nct_circuit, NctSpec};
///
/// let spec = NctSpec { name: "demo", lines: 5, n_ccx: 3, n_cx: 4, n_x: 1, seed: 7 };
/// let c = nct_circuit(&spec);
/// assert_eq!(c.len(), 8);
/// assert_eq!(c.n_qubits(), 5);
/// ```
pub fn nct_circuit(spec: &NctSpec) -> Circuit {
    assert!(
        spec.n_ccx == 0 || spec.lines >= 3,
        "{}: toffoli needs 3 lines",
        spec.name
    );
    assert!(
        spec.n_cx == 0 || spec.lines >= 2,
        "{}: cnot needs 2 lines",
        spec.name
    );
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut c = Circuit::new(spec.lines);

    // Interleave the three gate kinds in a deterministic shuffled order so
    // the circuit looks like a synthesized cascade rather than three
    // homogeneous blocks.
    let mut kinds: Vec<u8> = std::iter::repeat_n(2u8, spec.n_ccx)
        .chain(std::iter::repeat_n(1u8, spec.n_cx))
        .chain(std::iter::repeat_n(0u8, spec.n_x))
        .collect();
    // Fisher–Yates with the seeded generator.
    for i in (1..kinds.len()).rev() {
        let j = rng.gen_range(0..=i);
        kinds.swap(i, j);
    }

    for kind in kinds {
        match kind {
            0 => {
                let q = rng.gen_range(0..spec.lines);
                c.push(Gate::X(q));
            }
            1 => {
                let (a, b) = distinct_pair(&mut rng, spec.lines);
                c.push(Gate::Cx(a, b));
            }
            _ => {
                let (a, b, t) = distinct_triple(&mut rng, spec.lines);
                c.push(Gate::Ccx(a, b, t));
            }
        }
    }
    c
}

fn distinct_pair(rng: &mut StdRng, n: usize) -> (usize, usize) {
    let a = rng.gen_range(0..n);
    let mut b = rng.gen_range(0..n - 1);
    if b >= a {
        b += 1;
    }
    (a, b)
}

fn distinct_triple(rng: &mut StdRng, n: usize) -> (usize, usize, usize) {
    let (a, b) = distinct_pair(rng, n);
    let mut t = rng.gen_range(0..n - 2);
    for &used in &[a.min(b), a.max(b)] {
        if t >= used {
            t += 1;
        }
    }
    (a, b, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use accqoc_circuit::GateKind;

    #[test]
    fn specs_have_expected_budgets() {
        for spec in paper_specs() {
            let c = nct_circuit(&spec);
            let counts = c.counts_by_kind();
            assert_eq!(
                counts.get(&GateKind::Ccx).copied().unwrap_or(0),
                spec.n_ccx,
                "{}",
                spec.name
            );
            assert_eq!(
                counts.get(&GateKind::Cx).copied().unwrap_or(0),
                spec.n_cx,
                "{}",
                spec.name
            );
            assert_eq!(
                counts.get(&GateKind::X).copied().unwrap_or(0),
                spec.n_x,
                "{}",
                spec.name
            );
        }
    }

    #[test]
    fn decomposed_mix_matches_table_two_formula() {
        // Each ccx → 2h + 4t + 3tdg + 6cx. Check 4gt4-v0_79 against the
        // paper's reported mix: t=56, h=28, cx=105, tdg=42.
        let spec = &paper_specs()[0];
        let c = nct_circuit(spec).decomposed(false);
        let counts = c.counts_by_kind();
        assert_eq!(counts[&GateKind::T], 56);
        assert_eq!(counts[&GateKind::H], 28);
        assert_eq!(counts[&GateKind::Cx], 105);
        assert_eq!(counts[&GateKind::Tdg], 42);
        assert!(!counts.contains_key(&GateKind::Ccx));
    }

    #[test]
    fn cm152a_matches_paper_row() {
        let spec = &paper_specs()[1];
        let c = nct_circuit(spec).decomposed(false);
        let counts = c.counts_by_kind();
        assert_eq!(counts[&GateKind::T], 304);
        assert_eq!(counts[&GateKind::H], 152);
        assert_eq!(counts[&GateKind::Cx], 532);
        assert_eq!(counts[&GateKind::Tdg], 228);
        assert_eq!(counts[&GateKind::X], 5);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = &paper_specs()[2];
        assert_eq!(nct_circuit(spec), nct_circuit(spec));
    }

    #[test]
    fn different_seeds_differ() {
        let a = NctSpec {
            seed: 1,
            ..paper_specs()[0].clone()
        };
        let b = NctSpec {
            seed: 2,
            ..paper_specs()[0].clone()
        };
        assert_ne!(nct_circuit(&a), nct_circuit(&b));
    }

    #[test]
    fn operands_always_distinct() {
        let spec = NctSpec {
            name: "stress",
            lines: 3,
            n_ccx: 50,
            n_cx: 50,
            n_x: 10,
            seed: 99,
        };
        // Circuit::push panics on repeated operands; reaching here is the test.
        let c = nct_circuit(&spec);
        assert_eq!(c.len(), 110);
    }

    #[test]
    fn extended_specs_generate() {
        for spec in extended_specs() {
            let c = nct_circuit(&spec);
            assert!(!c.is_empty(), "{}", spec.name);
            assert!(c.n_qubits() <= 16);
        }
    }
}
