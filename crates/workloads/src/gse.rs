//! Ground-State-Estimation-like circuits (ScaffCC's GSE benchmark).
//!
//! The structural skeleton of GSE is iterative-phase-estimation over a
//! Trotterized molecular Hamiltonian: layers of Pauli-string evolutions
//! `exp(−iθ·P)` implemented with CNOT ladders around an `rz`, with basis
//! changes (`h` for X-type terms) on the ends — exactly the gate texture
//! that matters to the mapping/grouping pipeline.

use accqoc_circuit::{Circuit, Gate};

/// Builds a GSE-like circuit: `trotter_steps` sweeps of nearest-neighbor
/// `ZZ` and `XX` evolutions plus local `Z` rotations, on `n` system
/// qubits.
///
/// Angles follow a fixed deterministic schedule (`θ_{k} = 0.1·(k+1)`),
/// standing in for the molecular coefficients of the original benchmark.
///
/// # Panics
///
/// Panics if `n < 2` or `trotter_steps == 0`.
///
/// # Examples
///
/// ```
/// use accqoc_workloads::gse;
///
/// let c = gse(6, 2);
/// assert_eq!(c.n_qubits(), 6);
/// assert!(c.len() > 50);
/// ```
pub fn gse(n: usize, trotter_steps: usize) -> Circuit {
    assert!(n >= 2, "gse needs at least two qubits");
    assert!(trotter_steps >= 1, "gse needs at least one trotter step");
    let mut c = Circuit::new(n);
    let mut term = 0usize;
    for _ in 0..trotter_steps {
        // ZZ evolutions on the chain.
        for q in 0..n - 1 {
            let theta = 0.1 * (term + 1) as f64;
            term += 1;
            c.push(Gate::Cx(q, q + 1));
            c.push(Gate::Rz(q + 1, theta));
            c.push(Gate::Cx(q, q + 1));
        }
        // XX evolutions (H-conjugated ZZ).
        for q in 0..n - 1 {
            let theta = 0.1 * (term + 1) as f64;
            term += 1;
            c.push(Gate::H(q));
            c.push(Gate::H(q + 1));
            c.push(Gate::Cx(q, q + 1));
            c.push(Gate::Rz(q + 1, theta));
            c.push(Gate::Cx(q, q + 1));
            c.push(Gate::H(q));
            c.push(Gate::H(q + 1));
        }
        // Local Z rotations.
        for q in 0..n {
            let theta = 0.05 * (term + 1) as f64;
            term += 1;
            c.push(Gate::Rz(q, theta));
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use accqoc_circuit::{circuit_unitary, GateKind};

    #[test]
    fn gate_budget_per_step() {
        let n = 5;
        let c = gse(n, 1);
        let counts = c.counts_by_kind();
        // Per step: (n−1)·2 + (n−1)·2 CNOTs, (n−1)·4 H, (n−1)·2 + n Rz.
        assert_eq!(counts[&GateKind::Cx], 4 * (n - 1));
        assert_eq!(counts[&GateKind::H], 4 * (n - 1));
        assert_eq!(counts[&GateKind::Rz], 2 * (n - 1) + n);
    }

    #[test]
    fn steps_scale_linearly() {
        let one = gse(4, 1).len();
        let three = gse(4, 3).len();
        assert_eq!(three, 3 * one);
    }

    #[test]
    fn small_instance_is_unitary() {
        let u = circuit_unitary(&gse(3, 1));
        assert!(u.is_unitary(1e-11));
    }

    #[test]
    fn deterministic() {
        assert_eq!(gse(6, 2), gse(6, 2));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_qubit_rejected() {
        let _ = gse(1, 1);
    }
}
