//! Quantum Fourier Transform circuits.
//!
//! The paper's suite includes `qft_10` and `qft_16` from ScaffCC. We emit
//! the standard ladder: a Hadamard per qubit followed by controlled-phase
//! rotations `CP(π/2^k)`, each decomposed into the 2-CNOT/2-Rz core the
//! paper's instruction mix reflects (Table II reports exactly `2·(n choose
//! 2)` each of `cx` and `rz` for `qft_n`).

use accqoc_circuit::{Circuit, Gate};

/// Builds `QFT(n)` over the `{h, rz, cx}` basis.
///
/// The controlled-phase `CP(λ)` between control `c` and target `t` is
/// emitted as `rz(λ/2) c; cx c,t; rz(−λ/2) t; cx c,t` — the entangling
/// core of the textbook decomposition (the residual single-qubit `u1`
/// correction commutes forward and is dropped, as RevLib-era QFT netlists
/// do).
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use accqoc_workloads::qft;
///
/// let c = qft(10);
/// let counts = c.counts_by_kind();
/// use accqoc_circuit::GateKind;
/// assert_eq!(counts[&GateKind::H], 10);
/// assert_eq!(counts[&GateKind::Cx], 90);
/// assert_eq!(counts[&GateKind::Rz], 90);
/// ```
pub fn qft(n: usize) -> Circuit {
    assert!(n >= 1, "qft needs at least one qubit");
    let mut c = Circuit::new(n);
    for i in 0..n {
        c.push(Gate::H(i));
        for j in (i + 1)..n {
            let lambda = std::f64::consts::PI / (1 << (j - i)) as f64;
            controlled_phase(&mut c, j, i, lambda);
        }
    }
    c
}

/// Appends the 2-CNOT controlled-phase core.
fn controlled_phase(c: &mut Circuit, control: usize, target: usize, lambda: f64) {
    c.push(Gate::Rz(control, lambda / 2.0));
    c.push(Gate::Cx(control, target));
    c.push(Gate::Rz(target, -lambda / 2.0));
    c.push(Gate::Cx(control, target));
}

#[cfg(test)]
mod tests {
    use super::*;
    use accqoc_circuit::{circuit_unitary, GateKind};
    use accqoc_linalg::{Mat, C64};

    #[test]
    fn gate_counts_scale_quadratically() {
        for n in [2, 4, 10, 16] {
            let c = qft(n);
            let counts = c.counts_by_kind();
            let pairs = n * (n - 1) / 2;
            assert_eq!(counts[&GateKind::H], n);
            assert_eq!(counts[&GateKind::Cx], 2 * pairs);
            assert_eq!(counts[&GateKind::Rz], 2 * pairs);
        }
    }

    #[test]
    fn qft2_matrix_structure() {
        // QFT(2) maps |x⟩ → (1/2)Σ_y ω^{xy}|y⟩ with ω = i, up to the
        // bit-reversal permutation and the dropped local u1 corrections.
        // Verify the core property we rely on: unitarity and the uniform
        // first column (|0…0⟩ → uniform superposition).
        let u = circuit_unitary(&qft(2));
        assert!(u.is_unitary(1e-12));
        for r in 0..4 {
            assert!((u[(r, 0)].abs() - 0.5).abs() < 1e-12, "row {r}");
        }
    }

    #[test]
    fn first_column_uniform_any_size() {
        for n in [1, 3, 5] {
            let u = circuit_unitary(&qft(n));
            let amp = 1.0 / ((1 << n) as f64).sqrt();
            for r in 0..(1 << n) {
                assert!((u[(r, 0)].abs() - amp).abs() < 1e-10, "n={n} row {r}");
            }
        }
    }

    #[test]
    fn controlled_phase_core_is_cu1_up_to_local_phase() {
        // rz(λ/2)c · cx · rz(−λ/2)t · cx = cu1(λ) · u1(−λ/2)_t up to phase.
        let mut c = Circuit::new(2);
        controlled_phase(&mut c, 0, 1, 1.1);
        let u = circuit_unitary(&c);
        // Diagonal with d00·d11 ≠ d01·d10 (entangling diagonal).
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert!(u[(i, j)].abs() < 1e-12);
                }
            }
        }
        let prod_main = u[(0, 0)] * u[(3, 3)];
        let prod_anti = u[(1, 1)] * u[(2, 2)];
        assert!(
            (prod_main - prod_anti).abs() > 1e-3,
            "core must be entangling"
        );
        let _ = C64::real(0.0);
        let _ = Mat::identity(1);
    }
}
