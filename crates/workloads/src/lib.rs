//! Benchmark workloads for the AccQOC reproduction.
//!
//! Synthetic, deterministic stand-ins for the paper's benchmark suite
//! (§VI-A): RevLib-style reversible NCT networks with the gate budgets of
//! the named Table II programs, QFT and GSE circuits from the ScaffCC
//! family, and seeded random cascades filling out the 159-program suite.
//! Beyond the fixed suite, the [`uccsd_family`] generator produces
//! *parameterized* traffic — Trotterized UCCSD ansatz slices swept over
//! a θ-grid — for the serving tier's warm-start benchmarks.
//!
//! # Example
//!
//! ```
//! use accqoc_workloads::{full_suite, profiling_split};
//!
//! let suite = full_suite();
//! let (profile, evaluate) = profiling_split(&suite, 42);
//! assert_eq!(profile.len(), suite.len() / 3);
//! assert_eq!(profile.len() + evaluate.len(), suite.len());
//! ```

#![warn(missing_docs)]

mod gse;
mod qft;
mod revlib;
mod suite;
mod uccsd;

pub use gse::gse;
pub use qft::qft;
pub use revlib::{extended_specs, nct_circuit, paper_specs, NctSpec};
pub use suite::{
    arrival_stream, full_suite, golden_suite, profiling_split, sample_programs, zipf_arrivals,
    BenchProgram, GOLDEN_NAMES, SUITE_SIZE,
};
pub use uccsd::{
    default_theta_grid, theta_grid, uccsd_family, uccsd_slice, DEFAULT_GRID_POINTS,
    SLICE_ANGLE_STEP, THETA_MAX, THETA_MIN,
};
