//! The benchmark suite.
//!
//! The paper evaluates on 159 programs: RevLib reversible functions plus
//! QFT and GSE from ScaffCC, mapped to the 14-qubit Melbourne chip, with
//! sampled program sizes between 200 and 2000 gates (§VI-A). This module
//! assembles the same-shaped suite from the synthetic generators and
//! provides the random ⅓-profiling split used by static pre-compilation
//! (§IV-C).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use accqoc_circuit::Circuit;

use crate::gse::gse;
use crate::qft::qft;
use crate::revlib::{extended_specs, nct_circuit, paper_specs, NctSpec};

/// A named benchmark program.
#[derive(Debug, Clone)]
pub struct BenchProgram {
    /// Program name (RevLib/ScaffCC convention).
    pub name: String,
    /// The logical circuit (high-level gates not yet decomposed).
    pub circuit: Circuit,
}

impl BenchProgram {
    fn new(name: impl Into<String>, circuit: Circuit) -> Self {
        Self {
            name: name.into(),
            circuit,
        }
    }

    /// Gate count after Toffoli decomposition (the paper counts
    /// hardware-basis gates).
    pub fn decomposed_len(&self) -> usize {
        self.circuit.decomposed(false).len()
    }
}

/// Number of programs in the full suite (paper §VI-A).
pub const SUITE_SIZE: usize = 159;

/// Builds the full 159-program suite, deterministically.
///
/// Composition: the 4 named Table II RevLib programs, 12 further
/// RevLib-style functions, QFT(3..=16), GSE sweeps, and seeded random NCT
/// cascades sized to cover the paper's 200–2000 gate range.
///
/// # Examples
///
/// ```
/// use accqoc_workloads::full_suite;
/// let suite = full_suite();
/// assert_eq!(suite.len(), accqoc_workloads::SUITE_SIZE);
/// ```
pub fn full_suite() -> Vec<BenchProgram> {
    let mut out: Vec<BenchProgram> = Vec::with_capacity(SUITE_SIZE);

    for spec in paper_specs() {
        out.push(BenchProgram::new(spec.name, nct_circuit(&spec)));
    }
    for spec in extended_specs() {
        // Clamp to the Melbourne width for mapped experiments.
        let spec = NctSpec {
            lines: spec.lines.min(14),
            ..spec
        };
        out.push(BenchProgram::new(spec.name, nct_circuit(&spec)));
    }
    for n in 3..=16 {
        out.push(BenchProgram::new(format!("qft_{n}"), qft(n)));
    }
    for (n, steps) in [(4, 1), (5, 1), (6, 1), (6, 2), (8, 2), (10, 2), (12, 3)] {
        out.push(BenchProgram::new(format!("gse_{n}_{steps}"), gse(n, steps)));
    }

    // Fill the remainder with seeded random NCT cascades spanning the
    // 200–2000 decomposed-gate range of the paper.
    let mut rng = StdRng::seed_from_u64(0x5EED_5EED);
    let mut i = 0usize;
    while out.len() < SUITE_SIZE {
        let lines = rng.gen_range(4..=12usize);
        // Post-decomposition size ≈ 16·ccx + cx + x; pick ccx to land in
        // [200, 2000].
        let target: usize = rng.gen_range(200..=2000);
        let n_ccx = (target * 3 / 4) / 16;
        let n_cx = target / 5;
        let n_x = rng.gen_range(0..=6);
        let spec = NctSpec {
            name: "rand",
            lines,
            n_ccx: n_ccx.max(1),
            n_cx: n_cx.max(1),
            n_x,
            seed: 0xBEEF + i as u64,
        };
        out.push(BenchProgram::new(
            format!("rand_nct_{i:03}"),
            nct_circuit(&spec),
        ));
        i += 1;
    }
    out
}

/// Names of the golden-corpus programs, in corpus order. The selection
/// policy: at most 5 qubits (so the verifier's exact dense-composition
/// oracle applies on a 5-qubit device and the corpus recomputes quickly
/// from a fresh checkout), at most ~150 hardware-basis gates, and at
/// least one program from each suite family (QFT, GSE, RevLib) — plus
/// one representative *parameterized* entry, the middle grid point of
/// the default [`crate::uccsd_family`] ansatz.
pub const GOLDEN_NAMES: [&str; 5] = ["qft_3", "qft_4", "gse_4_1", "4mod5-v1_22", "uccsd_4_3_t4"];

/// The compact, deterministic subset of the suite backing the golden
/// regression corpus under `results/golden/` (see [`GOLDEN_NAMES`] for
/// the selection policy). The `uccsd_*` entry comes from the default
/// θ-grid family rather than [`full_suite`], which stays pinned at its
/// original 159-program composition.
///
/// # Examples
///
/// ```
/// let golden = accqoc_workloads::golden_suite();
/// assert_eq!(golden.len(), accqoc_workloads::GOLDEN_NAMES.len());
/// assert!(golden.iter().all(|p| p.circuit.n_qubits() <= 5));
/// ```
pub fn golden_suite() -> Vec<BenchProgram> {
    let suite = full_suite();
    let uccsd = crate::uccsd_family(4, 3, &crate::default_theta_grid());
    GOLDEN_NAMES
        .iter()
        .map(|name| {
            let pool = if name.starts_with("uccsd_") {
                &uccsd
            } else {
                &suite
            };
            pool.iter()
                .find(|p| p.name == *name)
                .unwrap_or_else(|| panic!("golden program {name} missing from suite"))
                .clone()
        })
        .collect()
}

/// Samples an *arrival stream* over the given programs: `length` draws
/// with repetition, weighted toward the front of `pool` (rank-weighted,
/// Zipf-like — real compilation traffic repeats a hot set of programs).
/// Deterministic for a given seed; the serving benchmarks replay the
/// result against [`Session::serve_program`] to measure hit rates with
/// realistic re-arrivals.
///
/// [`Session::serve_program`]:
///     https://docs.rs/accqoc/latest/accqoc/struct.Session.html
///
/// # Examples
///
/// ```
/// let suite = accqoc_workloads::golden_suite();
/// let stream = accqoc_workloads::arrival_stream(suite.len(), 10, 7);
/// assert_eq!(stream.len(), 10);
/// assert!(stream.iter().all(|&i| i < suite.len()));
/// // Deterministic per seed.
/// assert_eq!(stream, accqoc_workloads::arrival_stream(suite.len(), 10, 7));
/// ```
pub fn arrival_stream(pool: usize, length: usize, seed: u64) -> Vec<usize> {
    zipf_arrivals(pool, length, 1.0, seed)
}

/// [`arrival_stream`] with an explicit zipf exponent: rank `r` is drawn
/// with weight `1/(r+1)^s`. `s = 1.0` reproduces [`arrival_stream`]
/// byte-for-byte; larger exponents concentrate traffic on the hot head
/// (more exact hits), smaller ones flatten it toward uniform (more
/// compiles). Multi-client interleavings fall out of the daemon replay
/// pattern: N clients replaying one `zipf_arrivals` stream interleave
/// arbitrarily at the server, and in-flight coalescing keeps the result
/// byte-identical to the sequential replay — or give each client its own
/// seed for independent traffic.
///
/// # Panics
///
/// Panics if `pool == 0` or `s` is not finite and non-negative.
///
/// # Examples
///
/// ```
/// let stream = accqoc_workloads::zipf_arrivals(8, 100, 1.1, 7);
/// assert_eq!(stream.len(), 100);
/// assert!(stream.iter().all(|&i| i < 8));
/// // s = 1.0 is exactly the rank-weighted arrival_stream.
/// assert_eq!(
///     accqoc_workloads::zipf_arrivals(8, 50, 1.0, 7),
///     accqoc_workloads::arrival_stream(8, 50, 7),
/// );
/// ```
pub fn zipf_arrivals(pool: usize, length: usize, s: f64, seed: u64) -> Vec<usize> {
    assert!(pool > 0, "arrival stream needs a non-empty program pool");
    assert!(
        s.is_finite() && s >= 0.0,
        "zipf exponent must be finite and non-negative, got {s}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    // Rank weights 1/(r+1)^s: the first program is the hottest. Sampling
    // by cumulative weight keeps the head hot without starving the tail.
    // s == 1.0 avoids powf so the historical arrival_stream draws are
    // reproduced bit-for-bit.
    let weights: Vec<f64> = (0..pool)
        .map(|r| {
            let rank = (r + 1) as f64;
            if s == 1.0 {
                1.0 / rank
            } else {
                1.0 / rank.powf(s)
            }
        })
        .collect();
    let total: f64 = weights.iter().sum();
    (0..length)
        .map(|_| {
            let mut x = rng.gen_range(0.0..total);
            for (i, w) in weights.iter().enumerate() {
                if x < *w {
                    return i;
                }
                x -= w;
            }
            pool - 1
        })
        .collect()
}

/// Splits the suite into (profiling, evaluation) with a random third used
/// for static pre-compilation, seeded for reproducibility (paper §IV-C:
/// "we randomly select one-third of quantum programs from our set of
/// benchmarks").
pub fn profiling_split(suite: &[BenchProgram], seed: u64) -> (Vec<usize>, Vec<usize>) {
    let mut idx: Vec<usize> = (0..suite.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..idx.len()).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    let third = suite.len() / 3;
    let profile = idx[..third].to_vec();
    let evaluate = idx[third..].to_vec();
    (profile, evaluate)
}

/// Picks suite programs that fit a device of `max_qubits`, sampled
/// deterministically — used where the paper says "we randomly sampled
/// some quantum programs with between 200 and 2000 gates" (§VI-A).
pub fn sample_programs(
    suite: &[BenchProgram],
    max_qubits: usize,
    size_range: std::ops::RangeInclusive<usize>,
    count: usize,
    seed: u64,
) -> Vec<usize> {
    let eligible: Vec<usize> = (0..suite.len())
        .filter(|&i| {
            suite[i].circuit.n_qubits() <= max_qubits
                && size_range.contains(&suite[i].decomposed_len())
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool = eligible;
    for i in (1..pool.len()).rev() {
        let j = rng.gen_range(0..=i);
        pool.swap(i, j);
    }
    pool.truncate(count);
    pool.sort_unstable();
    pool
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_paper_size_and_is_deterministic() {
        let a = full_suite();
        assert_eq!(a.len(), SUITE_SIZE);
        let b = full_suite();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.circuit, y.circuit);
        }
    }

    #[test]
    fn names_are_unique() {
        let suite = full_suite();
        let mut names: Vec<&str> = suite.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SUITE_SIZE);
    }

    #[test]
    fn random_programs_cover_size_range() {
        let suite = full_suite();
        let sizes: Vec<usize> = suite
            .iter()
            .filter(|p| p.name.starts_with("rand_nct"))
            .map(|p| p.decomposed_len())
            .collect();
        assert!(!sizes.is_empty());
        assert!(sizes.iter().any(|&s| s < 600), "small programs present");
        assert!(sizes.iter().any(|&s| s > 1200), "large programs present");
        for &s in &sizes {
            assert!((150..=2200).contains(&s), "size {s} out of expected band");
        }
    }

    #[test]
    fn profiling_split_is_a_partition() {
        let suite = full_suite();
        let (profile, eval) = profiling_split(&suite, 42);
        assert_eq!(profile.len(), SUITE_SIZE / 3);
        assert_eq!(profile.len() + eval.len(), SUITE_SIZE);
        let mut all: Vec<usize> = profile.iter().chain(&eval).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), SUITE_SIZE);
        // Seeded determinism.
        let (profile2, _) = profiling_split(&suite, 42);
        assert_eq!(profile, profile2);
        let (profile3, _) = profiling_split(&suite, 43);
        assert_ne!(profile, profile3);
    }

    #[test]
    fn sampling_respects_constraints() {
        let suite = full_suite();
        let picks = sample_programs(&suite, 14, 200..=2000, 6, 7);
        assert!(picks.len() <= 6);
        for &i in &picks {
            assert!(suite[i].circuit.n_qubits() <= 14);
            let len = suite[i].decomposed_len();
            assert!(
                (200..=2000).contains(&len),
                "{} has {len} gates",
                suite[i].name
            );
        }
    }

    #[test]
    fn golden_suite_is_small_deterministic_and_cross_family() {
        let golden = golden_suite();
        assert_eq!(golden.len(), GOLDEN_NAMES.len());
        for (p, name) in golden.iter().zip(GOLDEN_NAMES) {
            assert_eq!(p.name, name);
            assert!(p.circuit.n_qubits() <= 5, "{name} too wide");
            assert!(p.decomposed_len() <= 150, "{name} too large");
        }
        // One program per family at least, including the parameterized
        // UCCSD entry.
        assert!(golden.iter().any(|p| p.name.starts_with("qft_")));
        assert!(golden.iter().any(|p| p.name.starts_with("gse_")));
        assert!(golden.iter().any(|p| p.name.starts_with("uccsd_")));
        assert!(golden.iter().any(|p| !p.name.starts_with("qft_")
            && !p.name.starts_with("gse_")
            && !p.name.starts_with("uccsd_")));
        // Deterministic across calls.
        let again = golden_suite();
        for (a, b) in golden.iter().zip(&again) {
            assert_eq!(a.circuit, b.circuit);
        }
    }

    #[test]
    fn arrival_stream_is_deterministic_head_heavy_and_in_range() {
        let stream = arrival_stream(10, 400, 0xA11);
        assert_eq!(stream.len(), 400);
        assert!(stream.iter().all(|&i| i < 10));
        assert_eq!(stream, arrival_stream(10, 400, 0xA11));
        assert_ne!(stream, arrival_stream(10, 400, 0xA12));
        // Rank weighting: the hottest program arrives more often than the
        // coldest.
        let count = |k: usize| stream.iter().filter(|&&i| i == k).count();
        assert!(
            count(0) > count(9),
            "head {} vs tail {}",
            count(0),
            count(9)
        );
        // Repetition actually happens (that is the point of a stream).
        assert!(count(0) > 1);
    }

    #[test]
    fn zipf_exponent_shapes_the_head_and_one_is_exact() {
        // s = 1.0 must reproduce the historical arrival_stream draws
        // bit-for-bit (the serving benchmarks' streams are pinned).
        assert_eq!(
            zipf_arrivals(10, 400, 1.0, 0xA11),
            arrival_stream(10, 400, 0xA11)
        );
        // A hotter exponent concentrates more of the stream on rank 0.
        let head = |s: f64| {
            zipf_arrivals(10, 400, s, 0xA11)
                .iter()
                .filter(|&&i| i == 0)
                .count()
        };
        assert!(head(2.0) > head(1.0), "hot {} vs {}", head(2.0), head(1.0));
        assert!(head(1.0) > head(0.0), "flat {} vs {}", head(1.0), head(0.0));
        // s = 0 is uniform-ish: the tail still arrives.
        let flat = zipf_arrivals(10, 400, 0.0, 0xA11);
        assert!(flat.iter().filter(|&&i| i == 9).count() > 10);
        // Deterministic per (s, seed).
        assert_eq!(zipf_arrivals(10, 40, 1.3, 9), zipf_arrivals(10, 40, 1.3, 9));
        assert_ne!(
            zipf_arrivals(10, 40, 1.3, 9),
            zipf_arrivals(10, 40, 1.3, 10)
        );
    }

    #[test]
    fn suite_contains_expected_families() {
        let suite = full_suite();
        let has = |prefix: &str| suite.iter().any(|p| p.name.starts_with(prefix));
        assert!(has("qft_"));
        assert!(has("gse_"));
        assert!(has("cm152a"));
        assert!(has("rand_nct_"));
    }
}
