//! Parallel compilation over a balanced MST partition (paper §V-D,
//! Figure 9): split the similarity MST into connected parts of similar
//! total work and compile each part on its own worker.
//!
//! Run with: `cargo run --release --example parallel_workers`

use accqoc_repro::accqoc::{
    collect_category, compile_parallel_with, mst_compile_order, partition_tree, ParallelOptions,
    SimilarityGraph, WeightedTree,
};
use accqoc_repro::prelude::*;
use accqoc_repro::workloads::{nct_circuit, NctSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::builder().topology(Topology::linear(5)).build()?;

    // A profiling set producing a few dozen unique groups.
    let programs: Vec<_> = (0..3)
        .map(|k| {
            nct_circuit(&NctSpec {
                name: "w",
                lines: 5,
                n_ccx: 2,
                n_cx: 6,
                n_x: 1,
                seed: 7000 + k,
            })
        })
        .collect();
    let (canonical, keys, _) = collect_category(&session, &programs);
    println!("category: {} unique groups", canonical.len());

    // SG → MST → weighted tree → balanced partition.
    let graph = SimilarityGraph::build(
        canonical.iter().map(|(u, _)| u.clone()).collect(),
        session.config().similarity,
    );
    let order = mst_compile_order(&graph);
    let tree = WeightedTree::from_order(&order, canonical.len());
    for k in [1, 2, 4] {
        let p = partition_tree(&tree, k);
        println!(
            "k={k}: {} parts, balance {:.2}, weight-makespan {:.2}",
            p.n_parts,
            p.balance(&tree),
            p.makespan(&tree)
        );
    }

    // Compile with 1 vs 4 pool threads over the SAME fixed plan: the
    // pulses (and any saved cache artifact) are byte-identical, only the
    // wall clock changes.
    let mut artifacts = Vec::new();
    for threads in [1, 4] {
        let opts = ParallelOptions::threads(threads);
        let (cache, stats) = compile_parallel_with(&session, &order, &canonical, &keys, &opts)?;
        println!(
            "\n{threads} thread(s): {} groups compiled in {:.2?} (engine wall)",
            cache.len(),
            stats.wall
        );
        println!(
            "  iterations: total {}, makespan {} ({} MST edges cut)",
            stats.total_iterations, stats.makespan_iterations, stats.cut_edges
        );
        println!("  per-part loads: {:?}", stats.iterations_per_part);
        for t in &stats.worker_timings {
            println!(
                "  worker {}: {} part(s), {} group(s), {} iters, busy {:.2?}",
                t.worker, t.parts, t.groups, t.iterations, t.wall
            );
        }
        artifacts.push(cache.to_json());
    }
    println!(
        "\nartifact byte-identical across thread counts: {}",
        artifacts.windows(2).all(|w| w[0] == w[1])
    );
    Ok(())
}
