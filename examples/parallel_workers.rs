//! Parallel compilation over a balanced MST partition (paper §V-D,
//! Figure 9): split the similarity MST into connected parts of similar
//! total work and compile each part on its own worker.
//!
//! Run with: `cargo run --release --example parallel_workers`

use accqoc_repro::accqoc::{
    collect_category, compile_parallel, mst_compile_order, partition_tree, SimilarityGraph,
    WeightedTree,
};
use accqoc_repro::prelude::*;
use accqoc_repro::workloads::{nct_circuit, NctSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::builder().topology(Topology::linear(5)).build()?;

    // A profiling set producing a few dozen unique groups.
    let programs: Vec<_> = (0..3)
        .map(|k| {
            nct_circuit(&NctSpec {
                name: "w",
                lines: 5,
                n_ccx: 2,
                n_cx: 6,
                n_x: 1,
                seed: 7000 + k,
            })
        })
        .collect();
    let (canonical, keys, _) = collect_category(&session, &programs);
    println!("category: {} unique groups", canonical.len());

    // SG → MST → weighted tree → balanced partition.
    let graph = SimilarityGraph::build(
        canonical.iter().map(|(u, _)| u.clone()).collect(),
        session.config().similarity,
    );
    let order = mst_compile_order(&graph);
    let tree = WeightedTree::from_order(&order, canonical.len());
    for k in [1, 2, 4] {
        let p = partition_tree(&tree, k);
        println!(
            "k={k}: {} parts, balance {:.2}, weight-makespan {:.2}",
            p.n_parts,
            p.balance(&tree),
            p.makespan(&tree)
        );
    }

    // Compile with 1 worker vs 4 workers and compare makespans.
    for workers in [1, 4] {
        let t0 = std::time::Instant::now();
        let (cache, stats) = compile_parallel(&session, &order, &canonical, &keys, workers)?;
        println!(
            "\n{workers} worker(s): {} groups compiled in {:.2?}",
            cache.len(),
            t0.elapsed()
        );
        println!(
            "  iterations: total {}, makespan {} ({} MST edges cut)",
            stats.total_iterations, stats.makespan_iterations, stats.cut_edges
        );
        println!("  per-part loads: {:?}", stats.iterations_per_part);
    }
    Ok(())
}
