//! The paper's headline scenario: a *non-variational* (static) algorithm
//! whose groups cannot be handled by parameterized pre-compilation
//! [Gokhale et al.] — AccQOC pre-compiles a profiled category once and
//! covers new programs from the cache.
//!
//! Run with: `cargo run --release --example static_algorithm`

use accqoc_repro::hw::NoiseModel;
use accqoc_repro::prelude::*;
use accqoc_repro::workloads::{nct_circuit, NctSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Profile a few small reversible programs (the "random third" of the
    // paper at miniature scale) on a 5-qubit line.
    let session = Session::builder().topology(Topology::linear(5)).build()?;
    let profile: Vec<_> = (0..3)
        .map(|k| {
            nct_circuit(&NctSpec {
                name: "profile",
                lines: 5,
                n_ccx: 3 + k,
                n_cx: 6,
                n_x: 1,
                seed: 100 + k as u64,
            })
        })
        .collect();

    println!(
        "static pre-compilation over {} profiling programs…",
        profile.len()
    );
    let report = session.precompile(&profile, PrecompileOrder::Mst)?;
    println!(
        "category: {} unique groups, {} iterations (one-time cost)",
        report.n_unique_groups, report.total_iterations
    );

    // A new, unseen static program (think: a fixed arithmetic kernel from
    // Shor — the program never changes between runs).
    let new_program = nct_circuit(&NctSpec {
        name: "shor-kernel",
        lines: 5,
        n_ccx: 5,
        n_cx: 8,
        n_x: 1,
        seed: 999,
    });
    let result = session.compile_program(&new_program)?;
    println!(
        "\nnew program: {} gates decomposed",
        new_program.decomposed(false).len()
    );
    println!(
        "coverage          : {}/{} groups ({:.0}%)",
        result.coverage.covered,
        result.coverage.total,
        result.coverage.rate() * 100.0
    );
    println!(
        "dynamic compile   : {} iterations (uncovered only)",
        result.dynamic_iterations
    );
    println!(
        "latency reduction : {:.2}x vs gate-based",
        result.latency_reduction()
    );

    // Why latency matters (paper §II-E): coherence-limited fidelity.
    let noise = NoiseModel::melbourne();
    let cx = result
        .grouped
        .groups
        .iter()
        .flat_map(|g| g.gates.iter())
        .filter(|g| g.arity() == 2)
        .count();
    let f_gate = noise.program_fidelity(cx, 30, result.gate_based_latency_ns);
    let f_qoc = noise.program_fidelity(cx, 30, result.overall_latency_ns);
    println!(
        "estimated fidelity: {:.3} (gate-based) -> {:.3} (AccQOC) from coherence alone",
        f_gate, f_qoc
    );
    Ok(())
}
