//! AccQOC on a variational-style workload: groups that differ only in
//! rotation angles are "simply different static groups" (paper §I) — the
//! similarity MST warm-starts each iteration's pulses from the previous
//! angle's pulses, no hyperparameter machinery needed.
//!
//! Run with: `cargo run --release --example variational_reuse`

use accqoc_repro::prelude::*;

/// One VQE-ish ansatz iteration at rotation angle `theta`.
fn ansatz(theta: f64) -> Circuit {
    Circuit::from_gates(
        4,
        [
            Gate::Ry(0, theta),
            Gate::Ry(1, theta * 0.8),
            Gate::Cx(0, 1),
            Gate::Ry(2, theta * 1.1),
            Gate::Cx(2, 3),
            Gate::Rz(1, theta / 2.0),
            Gate::Cx(1, 2),
            Gate::Ry(3, theta * 0.9),
        ],
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::builder().topology(Topology::linear(4)).build()?;

    // Simulated optimizer loop: the classical outer loop proposes a new
    // angle every iteration. Each iteration's circuit is a *different*
    // static program, but its groups are similar to the previous one's —
    // exactly what the MST warm start exploits.
    let mut total_iterations = 0usize;
    println!("iter  angle   coverage  dyn-iters  latency(ns)  reduction");
    for (i, theta) in [0.40, 0.55, 0.47, 0.52, 0.50].iter().enumerate() {
        let circuit = ansatz(*theta);
        let result = session.compile_program(&circuit)?;
        total_iterations += result.dynamic_iterations;
        println!(
            "{:>4}  {:.2}   {:>3.0}%      {:>6}     {:>8.1}   {:.2}x",
            i,
            theta,
            result.coverage.rate() * 100.0,
            result.dynamic_iterations,
            result.overall_latency_ns,
            result.latency_reduction()
        );
    }
    println!("\ntotal compile cost across iterations: {total_iterations} GRAPE iterations");
    println!(
        "cache now holds {} unique group pulses",
        session.cache_len()
    );
    println!("(arbitrary angles are fine: each is just another matrix — paper §I)");
    Ok(())
}
