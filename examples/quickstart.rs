//! Quickstart: compile a small circuit to control pulses with AccQOC.
//!
//! Run with: `cargo run --release --example quickstart`

use accqoc_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 3-qubit program: prepare a GHZ state and phase-kick it.
    let program = Circuit::from_gates(
        3,
        [
            Gate::H(0),
            Gate::Cx(0, 1),
            Gate::Cx(1, 2),
            Gate::T(2),
            Gate::Cx(1, 2),
            Gate::Cx(0, 1),
        ],
    );
    println!("program: {program}");

    // Compile on a 3-qubit linear device with the paper's defaults
    // (map2b4l grouping, crosstalk-aware mapping, L-BFGS GRAPE at the
    // 1e-4 fidelity target). The session owns the pulse cache.
    let session = Session::builder().topology(Topology::linear(3)).build()?;
    let result = session.compile_program(&program)?;

    println!("groups           : {}", result.grouped.len());
    println!("gate-based       : {:.1} ns", result.gate_based_latency_ns);
    println!("AccQOC pulses    : {:.1} ns", result.overall_latency_ns);
    println!("latency reduction: {:.2}x", result.latency_reduction());
    println!(
        "compile cost     : {} GRAPE iterations",
        result.dynamic_iterations
    );

    // Compiling the same program again is free: every group is covered.
    let again = session.compile_program(&program)?;
    println!(
        "second run       : {}/{} groups covered, {} iterations",
        again.coverage.covered, again.coverage.total, again.dynamic_iterations
    );
    assert_eq!(again.dynamic_iterations, 0);

    // The cache is a plain JSON artifact.
    let dir = std::env::temp_dir().join("accqoc_quickstart");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("pulses.json");
    session.save_cache(&path)?;
    println!(
        "pulse cache saved: {} ({} groups)",
        path.display(),
        session.cache_len()
    );
    Ok(())
}
