//! The paper's central motivation (§II-E), end to end: compile a program
//! with AccQOC, then *execute* it on the noisy simulator with gate-based
//! vs QOC latencies and watch the fidelity gap open up.
//!
//! Run with: `cargo run --release --example fidelity_motivation`

use accqoc_repro::prelude::*;
use accqoc_repro::sim::{latency_fidelity_comparison, ExecutionNoise};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 3-qubit program with enough depth for decoherence to matter.
    let mut program = Circuit::new(3);
    for _ in 0..4 {
        program.push(Gate::H(0));
        program.push(Gate::Cx(0, 1));
        program.push(Gate::T(1));
        program.push(Gate::Cx(1, 2));
        program.push(Gate::Tdg(2));
        program.push(Gate::Cx(1, 2));
        program.push(Gate::Cx(0, 1));
    }
    println!("program: {program}");

    // Compile with AccQOC to get the real latency numbers.
    let session = Session::builder().topology(Topology::linear(3)).build()?;
    let compiled = session.compile_program(&program)?;
    println!(
        "gate-based {:.0} ns, AccQOC {:.0} ns ({:.2}x reduction)",
        compiled.gate_based_latency_ns,
        compiled.overall_latency_ns,
        compiled.latency_reduction()
    );

    // Execute both schedules on the noisy simulator. The device-derived
    // per-gate durations reproduce the gate-based schedule; the AccQOC run
    // compresses it by the measured reduction factor.
    let durations = session.gate_durations();
    // Exaggerate the noise floor (T1/50) so a 3-qubit demo shows the gap
    // a 2000-gate program would show at real Melbourne T1.
    let noise = ExecutionNoise {
        t1_us: accqoc_repro::hw::T1_US / 50.0,
        t2_us: accqoc_repro::hw::T2_US / 50.0,
        ..ExecutionNoise::decoherence_only()
    };
    let (gate_based, accqoc) = latency_fidelity_comparison(
        &program,
        |g| durations.gate_duration(g),
        compiled.overall_latency_ns,
        &noise,
    );

    println!("\n              latency     fidelity");
    println!(
        "gate-based  {:>8.0} ns   {:.4}",
        gate_based.latency_ns, gate_based.fidelity
    );
    println!(
        "AccQOC      {:>8.0} ns   {:.4}",
        accqoc.latency_ns, accqoc.fidelity
    );
    println!(
        "\nfidelity gain from latency reduction alone: +{:.2}%",
        (accqoc.fidelity - gate_based.fidelity) * 100.0
    );
    assert!(accqoc.fidelity > gate_based.fidelity);
    Ok(())
}
